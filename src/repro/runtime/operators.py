"""Batch-native physical operators.

Each operator consumes one :class:`~repro.runtime.batch.RecordBatch` per call
and produces one (possibly empty) output batch; ``flush`` plays the same
end-of-stream role as for record operators.  Stateless relational operators
(filter, map, project) are vectorized over whole columns via the compiled
closures from :mod:`repro.runtime.compiler`; the windowed aggregation keeps
per-key accumulators fed from pre-extracted value columns; CEP steps the NFA
over precomputed predicate columns (:class:`BatchCEPOperator`); joins
build/probe their keyed buffers from column arrays (:class:`BatchJoinOperator`);
plugin operators that declare ``supports_batches`` run their own batch kernel
(:class:`NativeBatchOperator`).  Every built-in and NebulaMEOS operator is
batch-native; only sinks — and third-party plugin operators that do not
declare a batch kernel — still run through the per-record bridge, with
identical semantics behind the batch API.

Per-operator metric counts use the same ``"{index}:{name}"`` labels as the
record engine, incremented by the number of rows entering the operator, so
``operator_events`` agree between the two execution modes.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.cep.nfa import Match
from repro.cep.operator import CEPOperator
from repro.errors import StreamError
from repro.streaming.aggregations import Aggregation, Avg, Count, Max, Min, Sum
from repro.streaming.expressions import Expression
from repro.streaming.metrics import MetricsCollector
from repro.streaming.operators import (
    BufferingSinkOperator,
    FilterOperator,
    FlatMapOperator,
    JoinOperator,
    MapOperator,
    Operator,
    ProjectOperator,
    SinkOperator,
    WindowAggregateOperator,
)
from repro.streaming.record import Record
from repro.streaming.windows import (
    SlidingWindow,
    ThresholdWindow,
    TumblingWindow,
    WindowAssigner,
    WindowKey,
)
from repro.runtime.batch import RecordBatch, _fast_record
from repro.runtime.columns import BatchBuilder, as_list, get_numpy, is_ndarray
from repro.runtime.compiler import ColumnFunction, bool_mask, compile_expression


_UNEVALUATED = object()


class _LazyColumn:
    """A column that evaluates rows only when they are actually accessed.

    Whole-column evaluation diverges from the record engine on heterogeneous
    batches: a later CEP step or a threshold-window extractor is only ever
    evaluated by the record engine for the rows that *reach* it, so a row
    lacking one of the referenced fields must not fail the query unless it is
    consulted.  When an eager column evaluation raises (or the evaluator may
    have side effects), this wrapper reproduces record-at-a-time semantics
    exactly: one evaluation per accessed row, cached, raising only if the
    accessed row itself fails.
    """

    __slots__ = ("_evaluate", "_records", "_cache")

    def __init__(self, evaluate: Callable[[Record], Any], records: Sequence[Record]) -> None:
        self._evaluate = evaluate
        self._records = records
        self._cache: List[Any] = [_UNEVALUATED] * len(records)

    def __getitem__(self, index: int) -> Any:
        value = self._cache[index]
        if value is _UNEVALUATED:
            value = self._cache[index] = self._evaluate(self._records[index])
        return value

    def __len__(self) -> int:
        return len(self._records)


def _key_rows_of(batch: RecordBatch, key_fields: Sequence[str]) -> List[Tuple[Any, ...]]:
    """Per-row key tuples with ``Record.get`` semantics, built column-wise."""
    if not key_fields:
        return [()] * len(batch)
    return list(zip(*(batch.column_or_none(field) for field in key_fields)))


class _LazyRowsView:
    """Row access that materializes (and caches) only the rows it is asked for.

    Stands in for ``batch.to_records()`` where most rows are never touched —
    the CEP operator only binds records that advance a run.  Indexing returns
    exactly the record ``to_records()[i]`` would have produced.
    """

    __slots__ = ("_batch",)

    def __init__(self, batch: RecordBatch) -> None:
        self._batch = batch

    def __getitem__(self, index: int) -> Record:
        return self._batch.row_at(index)

    def __len__(self) -> int:
        return len(self._batch)


class BatchOperator:
    """Base class for batch operators.

    ``position`` is the operator's index in the compiled record-operator
    pipeline (used for entry points of binary nodes and for metric labels);
    ``stateless`` marks operators that are safe to fuse into one batch pass.
    """

    name = "batch-operator"
    stateless = False

    def __init__(self, position: int) -> None:
        self.position = position
        self.start_position = position
        self.end_position = position + 1
        self.label = f"{position}:{self.name}"

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        raise NotImplementedError

    def flush(self, metrics: MetricsCollector) -> RecordBatch:
        return RecordBatch.empty()

    def buffered_depth(self) -> int:
        """Buffered-state gauge, mirroring :meth:`Operator.buffered_depth`.

        Batch operators that wrap a record operator delegate to it; the
        batch-native window keeps its own state dictionaries.  Snapshot-time
        only — never consulted per batch.
        """
        operator = getattr(self, "operator", None)
        return operator.buffered_depth() if operator is not None else 0

    def checkpoint(self) -> Optional[Any]:
        """Mirror of :meth:`Operator.checkpoint` for batch pipelines.

        Wrappers around a record operator (CEP, join, native, bridge, sink)
        share its state object, so delegating covers them; the batch-native
        window overrides with its own state dictionaries.
        """
        operator = getattr(self, "operator", None)
        return operator.checkpoint() if operator is not None else None

    def restore(self, state: Any) -> None:
        operator = getattr(self, "operator", None)
        if operator is not None:
            operator.restore(state)
        elif state is not None:
            raise StreamError(f"{self.__class__.__name__} holds no restorable state")

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} at {self.position}>"


class VectorizedFilterOperator(BatchOperator):
    """Evaluates the predicate over whole columns and compresses the batch."""

    name = "filter"
    stateless = True

    def __init__(self, predicate: Expression, position: int) -> None:
        super().__init__(position)
        self.predicate = predicate
        self._mask = compile_expression(predicate)

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        return batch.compress(self._mask(batch))


class VectorizedMapOperator(BatchOperator):
    """Computes every assignment column from the input batch, then derives.

    Like ``MapOperator`` all assignments read the *input* record, so columns
    are computed against the incoming batch before any of them is attached.
    """

    name = "map"
    stateless = True

    def __init__(self, assignments: Mapping[str, Expression], position: int) -> None:
        super().__init__(position)
        self._columns: List[Tuple[str, ColumnFunction]] = [
            (name, compile_expression(expr)) for name, expr in assignments.items()
        ]

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        updates = {name: fn(batch) for name, fn in self._columns}
        return batch.with_columns(updates)


class VectorizedProjectOperator(BatchOperator):
    """Keeps only the listed columns."""

    name = "project"
    stateless = True

    def __init__(self, fields: Sequence[str], position: int) -> None:
        super().__init__(position)
        self.fields = list(fields)

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        return batch.project(self.fields)


class _WindowEmitter:
    """Window emissions accumulated as typed output columns.

    The columnar replacement for collecting emitted :class:`Record` objects:
    every emission appends one value per output column into a
    :class:`~repro.runtime.columns.BatchBuilder`, and :meth:`finish` hands
    downstream operators a column-backed batch whose provably-typed columns
    (window bounds for the built-in assigners, ``Count``/``Sum`` results)
    arrive as ready float64/int64 arrays — no per-record dict assembly, no
    row-to-column re-transposition, no dtype re-inference.  The ``window_end``
    column doubles as the emitted batch's timestamp array.
    """

    __slots__ = ("builder", "start", "end", "keys", "aggs", "timestamps")

    def __init__(self, operator: "BatchWindowAggregateOperator") -> None:
        builder = self.builder = BatchBuilder(timestamp_field="window_end")
        bounds = operator._bounds_dtype
        self.start = builder.column("window_start", bounds)
        self.end = builder.column("window_end", bounds)
        self.keys = [builder.column(name) for name in operator.key_fields]
        self.aggs = [
            (builder.column(agg.output, _agg_result_dtype(agg)), agg)
            for agg in operator.aggregations
        ]
        self.timestamps = builder.timestamps

    def emit(self, key: Tuple[Any, ...], window: WindowKey, states: List[Any]) -> None:
        start, end = window
        self.start.append(start)
        self.end.append(end)
        for column, value in zip(self.keys, key):
            column.append(value)
        for (column, agg), state in zip(self.aggs, states):
            column.append(agg.result(state))
        self.timestamps.append(float(end))

    def finish(self) -> RecordBatch:
        return self.builder.finish()


class _WindowRecordEmitter:
    """Fallback emitter for colliding output names (a key field or a second
    aggregation reusing ``window_start``/another output): record payloads are
    dicts, where the last writer wins — column identity cannot express that,
    so these (rare) operators keep per-record emission."""

    __slots__ = ("operator", "out")

    def __init__(self, operator: "BatchWindowAggregateOperator") -> None:
        self.operator = operator
        self.out: List[Record] = []

    def emit(self, key: Tuple[Any, ...], window: WindowKey, states: List[Any]) -> None:
        self.out.append(self.operator._emit(key, window, states))

    def finish(self) -> RecordBatch:
        return RecordBatch.from_records(self.out)


def _agg_result_dtype(agg: Aggregation) -> Optional[str]:
    """The provable result dtype of an aggregation, or ``None``.

    Only declared where the aggregation's fold guarantees it for every
    input: ``Count`` results are always ``int``, ``Sum`` always ``float``
    (its state starts at ``0.0`` and only ever adds ``float(value)``).
    ``Min``/``Max`` mirror their input types and ``Avg`` may yield ``None``
    on an empty fold, so they stay inference-backed lists.
    """
    kind = type(agg)
    if kind is Count:
        return "int64"
    if kind is Sum:
        return "float64"
    return None


class BatchWindowAggregateOperator(BatchOperator):
    """Keyed windowed aggregation consuming whole batches.

    Key tuples, threshold-predicate matches and per-aggregation input values
    are extracted column-wise once per batch; the per-row state machine then
    mirrors :class:`~repro.streaming.operators.WindowAggregateOperator`
    exactly (watermark bumps, emission ordering, threshold open/close), so the
    output record sequence is identical to record-at-a-time execution.
    Emissions are accumulated column-wise (:class:`_WindowEmitter`); under
    the numpy backend both tumbling windows (:meth:`_process_grouped`) and
    threshold windows (:meth:`_process_threshold_grouped`) run grouped array
    kernels instead of the per-row state machine whenever exactness allows.
    """

    name = "window"

    def __init__(
        self,
        assigner: WindowAssigner,
        aggregations: Sequence[Aggregation],
        key_fields: Sequence[str],
        allowed_lateness: float,
        position: int,
    ) -> None:
        super().__init__(position)
        self.assigner = assigner
        self.aggregations = list(aggregations)
        self.key_fields = list(key_fields)
        self.allowed_lateness = float(allowed_lateness)
        self._watermark = float("-inf")
        self._states: Dict[Tuple[Tuple[Any, ...], WindowKey], List[Any]] = {}
        self._open_thresholds: Dict[Tuple[Any, ...], List[Any]] = {}
        self._is_threshold = isinstance(assigner, ThresholdWindow)
        self._matches: Optional[ColumnFunction] = (
            compile_expression(assigner.predicate) if self._is_threshold else None
        )
        # The built-in assigners provably produce float window bounds
        # (record timestamps, or floor(t / size) * size with a float size);
        # an assigner subclass may emit anything, so its bounds columns stay
        # inference-backed.
        self._bounds_dtype: Optional[str] = (
            "float64"
            if type(assigner) in (TumblingWindow, SlidingWindow, ThresholdWindow)
            else None
        )
        # Columnar emission needs one column per output field; duplicate
        # names (dict payloads: last writer wins) keep record emission.
        output_names = ["window_start", "window_end"]
        output_names.extend(self.key_fields)
        output_names.extend(agg.output for agg in self.aggregations)
        self._columnar_emission = len(set(output_names)) == len(output_names)
        # Per-aggregation value extractors: a compiled column when possible, a
        # per-record fallback when the aggregation overrides ``extract``.
        self._extractors: List[Tuple[str, Any, Aggregation]] = []
        for agg in self.aggregations:
            if type(agg).extract is not Aggregation.extract:
                self._extractors.append(("record", None, agg))
            elif agg.on is None:
                self._extractors.append(("none", None, agg))
            else:
                self._extractors.append(("column", compile_expression(agg.on), agg))

    def _emitter(self) -> "_WindowEmitter | _WindowRecordEmitter":
        if self._columnar_emission:
            return _WindowEmitter(self)
        return _WindowRecordEmitter(self)

    # -- columnar preparation ------------------------------------------------------

    def _key_rows(self, batch: RecordBatch) -> List[Tuple[Any, ...]]:
        return _key_rows_of(batch, self.key_fields)

    def _value_columns(self, batch: RecordBatch) -> List[Optional[Sequence[Any]]]:
        """One value column per aggregation.

        The record engine only calls ``extract`` for rows that actually enter
        a window (threshold windows skip non-matching rows entirely), so
        custom ``extract`` overrides are always evaluated lazily per accessed
        row, and a compiled column that raises on a heterogeneous batch (a
        missing field, or a value the expression chokes on) falls back to the
        same lazy per-row extraction.
        """
        columns: List[Optional[Sequence[Any]]] = []
        for kind, compiled, agg in self._extractors:
            if kind == "none":
                columns.append(None)
            elif kind == "column":
                try:
                    columns.append(compiled(batch))
                except Exception:
                    columns.append(_LazyColumn(agg.extract, batch.to_records()))
            else:
                columns.append(_LazyColumn(agg.extract, batch.to_records()))
        return columns

    # -- grouped fast path (numpy backend, tumbling windows) -----------------------

    #: Aggregations whose per-row ``add`` folds can be replayed from grouped
    #: reductions with bit-identical results (see :meth:`_process_grouped`).
    _GROUPABLE = (Count, Sum, Min, Max, Avg)

    def _process_grouped(
        self,
        batch: RecordBatch,
        keys: List[Tuple[Any, ...]],
        values: List[Optional[Sequence[Any]]],
        out: "_WindowEmitter | _WindowRecordEmitter",
    ) -> bool:
        """Grouped-reduction kernel for tumbling windows; True when it applied.

        Rows are bucketed by ``(key, window)`` once (``np.add.reduceat``-style
        grouped reductions over a stable argsort), Count/Min/Max fold in C,
        and Sum/Avg replay their float additions sequentially per group —
        numpy's pairwise float summation would differ in the last bits from
        the record engine's left-to-right folds, so only the *machinery*
        (window assignment, bucketing, state lookups) is vectorized for them,
        never the float arithmetic itself.

        Exactness is protected by two vectorized guards:

        * every row's window must close strictly *after* every earlier
          timestamp (including the carried watermark).  Event-time-ordered
          streams always satisfy this — a row's window end exceeds its own
          timestamp — while a disordered batch that would make the record
          engine close-and-recreate a window mid-batch falls back to the
          per-row state machine.  Closing emissions can then be deferred to
          the end of the batch: windows close in end order, so the deferred
          emission sequence is exactly the record engine's.
        * ``NaN`` values fall back (``np.minimum`` propagates NaN, the record
          engine's ``<`` comparison skips it).
        """
        np = get_numpy()
        if np is None or type(self.assigner) is not TumblingWindow:
            return False
        if self.allowed_lateness < 0:
            return False
        for (kind, _, agg), column in zip(self._extractors, values):
            if kind == "record":
                return False
            if kind == "none":
                # no value column: only Count ignores its input; the others
                # fold per-row ``add(state, None)`` skips — keep them exact
                if type(agg) is not Count:
                    return False
            elif kind == "column" and not (
                is_ndarray(column) and column.dtype.kind in "bif"
            ):
                return False
        if not all(type(agg) in self._GROUPABLE for agg in self.aggregations):
            return False
        timestamps = batch.timestamps_array()
        if timestamps is None:
            return False
        size = self.assigner.size
        starts = np.floor(timestamps / size) * size
        closes = starts + size + self.allowed_lateness
        running = np.maximum.accumulate(timestamps)
        if self._watermark > float("-inf"):
            if closes[0] <= self._watermark:
                return False
            running = np.maximum(running, self._watermark)
        if len(closes) > 1 and not bool(np.all(closes[1:] > running[:-1])):
            return False
        for column in values:
            if (
                column is not None
                and column.dtype.kind == "f"
                and bool(np.isnan(column).any())
            ):
                return False

        group_of: Dict[Tuple[Tuple[Any, ...], float], int] = {}
        group_ids: List[int] = []
        start_list = starts.tolist()
        for key, start in zip(keys, start_list):
            group_key = (key, start)
            gid = group_of.get(group_key)
            if gid is None:
                gid = group_of[group_key] = len(group_of)
            group_ids.append(gid)
        gid_array = np.asarray(group_ids, dtype=np.intp)
        order = np.argsort(gid_array, kind="stable")
        sorted_gids = gid_array[order]
        boundaries = np.flatnonzero(np.diff(sorted_gids)) + 1
        offsets = np.concatenate((np.zeros(1, dtype=np.intp), boundaries))
        counts = np.diff(np.concatenate((offsets, np.asarray([len(keys)])))).tolist()
        offset_list = offsets.tolist()

        reduced: List[Any] = []
        for (kind, _, _), agg, column in zip(self._extractors, self.aggregations, values):
            agg_type = type(agg)
            if agg_type is Count:
                reduced.append(counts)
            elif agg_type is Min:
                reduced.append(np.minimum.reduceat(column[order], offsets).tolist())
            elif agg_type is Max:
                reduced.append(np.maximum.reduceat(column[order], offsets).tolist())
            else:  # Sum / Avg: sequential float folds per group
                reduced.append(column[order].tolist())

        size_f = size
        all_states = self._states
        for (key, start), gid in group_of.items():
            state_key = (key, (start, start + size_f))
            states = all_states.get(state_key)
            if states is None:
                states = all_states[state_key] = self._new_states()
            lo = offset_list[gid]
            hi = lo + counts[gid]
            for j, agg in enumerate(self.aggregations):
                agg_type = type(agg)
                state = states[j]
                if agg_type is Count:
                    states[j] = state + counts[gid]
                elif agg_type is Min:
                    value = reduced[j][gid]
                    states[j] = value if state is None or value < state else state
                elif agg_type is Max:
                    value = reduced[j][gid]
                    states[j] = value if state is None or value > state else state
                elif agg_type is Sum:
                    for value in reduced[j][lo:hi]:
                        state = state + float(value)
                    states[j] = state
                else:  # Avg
                    total, count = state
                    for value in reduced[j][lo:hi]:
                        total = total + float(value)
                    states[j] = [total, count + counts[gid]]

        final = running[-1].item() if len(running) else self._watermark
        if final > self._watermark:
            self._watermark = final
            self._emit_closed_into(out)
        return True

    def _window_rows(self, batch: RecordBatch) -> List[List[WindowKey]]:
        """Per-row window assignments (vectorized for the built-in assigners)."""
        assigner = self.assigner
        kind = type(assigner)
        if kind is TumblingWindow:
            size = assigner.size
            floor = math.floor
            return [
                [(floor(t / size) * size, floor(t / size) * size + size)]
                for t in batch.timestamps
            ]
        if kind is SlidingWindow:
            size, slide = assigner.size, assigner.slide
            floor = math.floor
            rows = []
            for t in batch.timestamps:
                start = floor(t / slide) * slide
                windows: List[WindowKey] = []
                while start > t - size:
                    windows.append((start, start + size))
                    start -= slide
                rows.append(sorted(windows))
            return rows
        return [assigner.assign(record) for record in batch.to_records()]

    # -- state machine (mirrors WindowAggregateOperator) -------------------------------

    def _new_states(self) -> List[Any]:
        return [agg.create() for agg in self.aggregations]

    def _emit(self, key: Tuple[Any, ...], window: WindowKey, states: List[Any]) -> Record:
        start, end = window
        payload: Dict[str, Any] = {"window_start": start, "window_end": end}
        for name, value in zip(self.key_fields, key):
            payload[name] = value
        for agg, state in zip(self.aggregations, states):
            payload[agg.output] = agg.result(state)
        return _fast_record(payload, float(end))

    def _emit_closed_into(self, out: "_WindowEmitter | _WindowRecordEmitter") -> None:
        watermark = self._watermark
        ready = [
            (key, window)
            for (key, window) in self._states
            if window[1] + self.allowed_lateness <= watermark
        ]
        for key, window in sorted(ready, key=lambda kw: kw[1][1]):
            out.emit(key, window, self._states.pop((key, window)))

    def _close_threshold_into(
        self, key: Tuple[Any, ...], out: "_WindowEmitter | _WindowRecordEmitter"
    ) -> None:
        start, end, count, states = self._open_thresholds.pop(key)
        if count >= self.assigner.min_count:  # type: ignore[union-attr]
            out.emit(key, (start, end), states)

    @staticmethod
    def _as_row_values(values: List[Optional[Sequence[Any]]]) -> List[Optional[Sequence[Any]]]:
        """Per-row-indexable value columns: ndarrays become lists so the
        ``agg.add`` folds see Python scalars, never numpy ones."""
        return [as_list(column) if is_ndarray(column) else column for column in values]

    # -- threshold-window kernel (numpy backend) -----------------------------------

    def _process_threshold_grouped(
        self,
        batch: RecordBatch,
        keys: List[Tuple[Any, ...]],
        values: List[Optional[Sequence[Any]]],
        matches: Any,
        out: "_WindowEmitter | _WindowRecordEmitter",
    ) -> bool:
        """Batch-native threshold windows; ``True`` when the kernel applied.

        The predicate arrives as one boolean mask column; per key group the
        episode open/close boundaries are the mask's transitions (runs of
        consecutive matching rows, split further when ``max_duration`` caps
        an episode mid-run), and per-episode aggregates come from the same
        ``reduceat`` machinery as the grouped tumbling path — Count/Min/Max
        reduce in C, Sum/Avg replay their float folds sequentially per
        episode so the arithmetic stays bit-identical to the record engine.
        Episodes still open at batch end carry over through
        ``_open_thresholds`` exactly as the per-row machine leaves them, and
        closed episodes are emitted in closing-row order, which is the
        record engine's emission order (a close is yielded while processing
        the first non-matching — or duration-capping — row).

        Engages only where exactness is proven: a native mask, every
        aggregation groupable with native-dtype value columns, no NaN values
        (``np.minimum``/``np.maximum`` propagate NaN, the record fold's
        comparison skips it).
        """
        np = get_numpy()
        if np is None:
            return False
        mask = bool_mask(matches)
        if mask is None:
            return False
        for (kind, _, agg), column in zip(self._extractors, values):
            if kind == "record":
                return False
            if kind == "none":
                if type(agg) is not Count:
                    return False
            elif not (is_ndarray(column) and column.dtype.kind in "bif"):
                return False
        if not all(type(agg) in self._GROUPABLE for agg in self.aggregations):
            return False
        for column in values:
            if (
                column is not None
                and column.dtype.kind == "f"
                and bool(np.isnan(column).any())
            ):
                return False

        timestamps = batch.timestamps
        aggregations = self.aggregations
        agg_kinds = [type(agg) for agg in aggregations]
        min_count = self.assigner.min_count  # type: ignore[union-attr]
        max_duration = self.assigner.max_duration  # type: ignore[union-attr]
        open_thresholds = self._open_thresholds
        groups: Dict[Tuple[Any, ...], List[int]] = {}
        for i, key in enumerate(keys):
            group = groups.get(key)
            if group is None:
                groups[key] = [i]
            else:
                group.append(i)
        # (closing row, key, start, end, count, states) — sorted at the end so
        # emissions interleave across keys exactly like row-order processing.
        closes: List[Tuple[int, Tuple[Any, ...], float, float, int, List[Any]]] = []
        # (opening row, key, open state) for episodes opened in this batch and
        # still open at its end: inserted into _open_thresholds in opening-row
        # order, because its dict order is the record engine's flush order.
        # Carried episodes that stay open are updated in place instead — a
        # dict assignment to an existing key preserves its position.
        opens: List[Tuple[int, Tuple[Any, ...], List[Any]]] = []

        for key, indices in groups.items():
            idx = np.asarray(indices, dtype=np.intp)
            m = mask[idx]
            matched_local = np.flatnonzero(m)
            carried = open_thresholds.get(key)
            if not len(matched_local):
                if carried is not None:
                    del open_thresholds[key]
                    closes.append(
                        (indices[0], key, carried[0], carried[1], carried[2], carried[3])
                    )
                continue
            if carried is not None and matched_local[0] != 0:
                # the key's first row does not match: the carried episode
                # closes there, before any new episode opens
                del open_thresholds[key]
                closes.append(
                    (indices[0], key, carried[0], carried[1], carried[2], carried[3])
                )
                carried = None

            matched_idx = idx[matched_local]
            matched_rows = matched_idx.tolist()
            matched_ts = [timestamps[row] for row in matched_rows]
            local_list = matched_local.tolist()
            if len(matched_local) > 1:
                breaks = (np.flatnonzero(np.diff(matched_local) > 1) + 1).tolist()
            else:
                breaks = []
            run_bounds = list(zip([0] + breaks, breaks + [len(local_list)]))

            # Episode segmentation: (a, b) in matched-row space, the episode
            # start/end timestamps, the closing row (None = still open) and
            # the carried state it continues (first episode only).
            episodes: List[Tuple[int, int, float, float, Optional[int], Optional[List[Any]]]] = []
            for run_index, (ra, rb) in enumerate(run_bounds):
                carry = carried if run_index == 0 else None
                seg_start = ra
                start_ts = carry[0] if carry is not None else matched_ts[ra]
                if max_duration is not None:
                    for p in range(ra, rb):
                        if matched_ts[p] - start_ts >= max_duration:
                            episodes.append(
                                (seg_start, p + 1, start_ts, matched_ts[p], matched_rows[p], carry)
                            )
                            carry = None
                            seg_start = p + 1
                            if seg_start < rb:
                                start_ts = matched_ts[seg_start]
                if seg_start < rb:
                    after = local_list[rb - 1] + 1
                    if after < len(indices):
                        # by run construction the key's next in-batch row does
                        # not match: the episode closes while processing it
                        episodes.append(
                            (seg_start, rb, start_ts, matched_ts[rb - 1], indices[after], carry)
                        )
                    else:
                        episodes.append(
                            (seg_start, rb, start_ts, matched_ts[rb - 1], None, carry)
                        )

            offsets = np.asarray([episode[0] for episode in episodes], dtype=np.intp)
            reduced: List[Optional[List[Any]]] = []
            for kind_t, column in zip(agg_kinds, values):
                if kind_t is Count:
                    reduced.append(None)
                    continue
                matched_values = column[matched_idx]
                if kind_t is Min:
                    reduced.append(np.minimum.reduceat(matched_values, offsets).tolist())
                elif kind_t is Max:
                    reduced.append(np.maximum.reduceat(matched_values, offsets).tolist())
                else:  # Sum / Avg: sequential float folds per episode
                    reduced.append(matched_values.tolist())

            for episode_index, (a, b, start_ts, end_ts, close_row, carry) in enumerate(episodes):
                states = carry[3] if carry is not None else self._new_states()
                count = (carry[2] if carry is not None else 0) + (b - a)
                for j, kind_t in enumerate(agg_kinds):
                    if kind_t is Count:
                        states[j] = states[j] + (b - a)
                    elif kind_t is Min:
                        value = reduced[j][episode_index]
                        state = states[j]
                        states[j] = value if state is None or value < state else state
                    elif kind_t is Max:
                        value = reduced[j][episode_index]
                        state = states[j]
                        states[j] = value if state is None or value > state else state
                    elif kind_t is Sum:
                        state = states[j]
                        for value in reduced[j][a:b]:
                            state = state + float(value)
                        states[j] = state
                    else:  # Avg
                        total, seen = states[j]
                        for value in reduced[j][a:b]:
                            total = total + float(value)
                        states[j] = [total, seen + (b - a)]
                if close_row is None:
                    if carry is not None:
                        open_thresholds[key] = [start_ts, end_ts, count, states]
                    else:
                        opens.append((matched_rows[a], key, [start_ts, end_ts, count, states]))
                else:
                    if carry is not None:
                        del open_thresholds[key]
                    closes.append((close_row, key, start_ts, end_ts, count, states))

        opens.sort(key=lambda entry: entry[0])
        for _, key, state in opens:
            open_thresholds[key] = state
        closes.sort(key=lambda entry: entry[0])
        for _, key, start_ts, end_ts, count, states in closes:
            if count >= min_count:
                out.emit(key, (start_ts, end_ts), states)
        return True

    # -- per-row state machines ----------------------------------------------------

    def _process_threshold_rows(
        self,
        batch: RecordBatch,
        keys: List[Tuple[Any, ...]],
        values: List[Optional[Sequence[Any]]],
        matches_column: Sequence[Any],
        out: "_WindowEmitter | _WindowRecordEmitter",
    ) -> None:
        aggregations = self.aggregations
        max_duration = self.assigner.max_duration  # type: ignore[union-attr]
        open_thresholds = self._open_thresholds
        for i, t in enumerate(batch.timestamps):
            key = keys[i]
            open_state = open_thresholds.get(key)
            if matches_column[i]:
                if open_state is None:
                    open_state = [t, t, 0, self._new_states()]
                    open_thresholds[key] = open_state
                open_state[1] = t
                open_state[2] += 1
                states = open_state[3]
                for j, agg in enumerate(aggregations):
                    column = values[j]
                    states[j] = agg.add(states[j], None if column is None else column[i])
                if max_duration is not None and open_state[1] - open_state[0] >= max_duration:
                    self._close_threshold_into(key, out)
            elif open_state is not None:
                self._close_threshold_into(key, out)

    def _process_window_rows(
        self,
        batch: RecordBatch,
        keys: List[Tuple[Any, ...]],
        values: List[Optional[Sequence[Any]]],
        out: "_WindowEmitter | _WindowRecordEmitter",
    ) -> None:
        aggregations = self.aggregations
        window_rows = self._window_rows(batch)
        all_states = self._states
        for i, t in enumerate(batch.timestamps):
            key = keys[i]
            for window in window_rows[i]:
                state_key = (key, window)
                states = all_states.get(state_key)
                if states is None:
                    states = all_states[state_key] = self._new_states()
                for j, agg in enumerate(aggregations):
                    column = values[j]
                    states[j] = agg.add(states[j], None if column is None else column[i])
            if t > self._watermark:
                self._watermark = t
                self._emit_closed_into(out)

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        out = self._emitter()
        keys = self._key_rows(batch)
        values = self._value_columns(batch)
        if self._is_threshold:
            if len(batch):
                matches = self._matches(batch)  # type: ignore[misc]
                if not self._process_threshold_grouped(batch, keys, values, matches, out):
                    self._process_threshold_rows(
                        batch, keys, self._as_row_values(values), as_list(matches), out
                    )
        elif len(batch):
            if not self._process_grouped(batch, keys, values, out):
                self._process_window_rows(batch, keys, self._as_row_values(values), out)
        return out.finish()

    def flush(self, metrics: MetricsCollector) -> RecordBatch:
        out = self._emitter()
        if self._is_threshold:
            for key in list(self._open_thresholds):
                self._close_threshold_into(key, out)
        else:
            remaining = sorted(self._states, key=lambda kw: kw[1][1])
            for key, window in remaining:
                out.emit(key, window, self._states[(key, window)])
            self._states.clear()
        return out.finish()

    def buffered_depth(self) -> int:
        return len(self._states) + len(self._open_thresholds)

    def checkpoint(self) -> Dict[str, Any]:
        # Same payload shape as WindowAggregateOperator.checkpoint, so a
        # checkpoint taken on one engine restores on the other.
        return {
            "watermark": self._watermark,
            "states": self._states,
            "open_thresholds": self._open_thresholds,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._watermark = state["watermark"]
        self._states = dict(state["states"])
        self._open_thresholds = dict(state["open_thresholds"])


class BatchCEPOperator(BatchOperator):
    """Batch-native CEP: steps the NFA over whole columns.

    Per batch, every step (and negation) predicate is evaluated once as a
    boolean column — compiled via :func:`compile_expression` when the pattern
    was built from an :class:`~repro.streaming.expressions.Expression`, a
    single per-record pass otherwise — and the matcher's
    :meth:`~repro.cep.nfa.NFAMatcher.process_batch` advances all live runs,
    key-partitioned, in one call.  Output records are identical to feeding the
    wrapped :class:`~repro.cep.operator.CEPOperator` row by row, in the same
    order.
    """

    name = "cep"

    def __init__(self, operator: CEPOperator, position: int) -> None:
        super().__init__(position)
        self.operator = operator
        matcher = operator.matcher
        self._step_functions: List[Tuple[Callable[[RecordBatch], List[Any]], Any]] = []
        self._negation_functions: List[List[Tuple[Callable[[RecordBatch], List[Any]], Any]]] = []
        patterns = []
        for step in matcher.steps:
            self._step_functions.append((self._match_column(step.pattern), step.pattern))
            self._negation_functions.append(
                [(self._match_column(negation), negation) for negation in step.negations]
            )
            patterns.append(step.pattern)
            patterns.extend(step.negations)
        # Expression-backed patterns never touch records to evaluate, so rows
        # only need to exist for the few the NFA actually binds into runs —
        # a raw-callable predicate forces eager row materialization instead.
        self._rows_on_demand = all(
            getattr(pattern, "expression", None) is not None for pattern in patterns
        )

    @staticmethod
    def _match_column(pattern) -> Callable[[RecordBatch], List[Any]]:
        """A column of per-row match outcomes (truthiness is what counts).

        The NFA's batch path only ever tests the column entries for truth, so
        Expression-backed predicates compile straight to their value column
        and callable predicates are bound raw — no ``bool()`` wrapper and no
        ``matches`` dispatch per row.
        """
        expression = getattr(pattern, "expression", None)
        if expression is not None:
            return compile_expression(expression)
        predicate = getattr(pattern, "raw_predicate", None) or pattern.matches

        def per_record(batch: RecordBatch) -> List[Any]:
            return [predicate(record) for record in batch.to_records()]

        return per_record

    @staticmethod
    def _guarded_column(fn, pattern, batch: RecordBatch, records) -> Sequence[Any]:
        """Eager column evaluation with a lazy per-row fallback.

        The record engine evaluates a non-first step (or negation) predicate
        only for rows that a live run actually reaches, so a heterogeneous
        batch where some row lacks a referenced field (StreamError) or holds a
        value the predicate chokes on (e.g. a TypeError comparing None) must
        not fail the whole query up front — fall back to evaluating accessed
        rows only, which re-raises exactly when the record engine would.
        """
        try:
            return as_list(fn(batch))
        except Exception:
            return _LazyColumn(pattern.matches, records)

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        if not len(batch):
            return RecordBatch.empty()
        operator = self.operator
        keys = _key_rows_of(batch, operator.key_fields)
        records: Sequence[Record] = (
            _LazyRowsView(batch) if self._rows_on_demand else batch.to_records()
        )
        # The first step is evaluated for every record by the record engine
        # too (every record may start a run), so it stays eager and an error
        # there is record-engine behaviour; later steps get the lazy guard.
        first_fn, _ = self._step_functions[0]
        step_columns: List[Sequence[Any]] = [as_list(first_fn(batch))]
        for fn, pattern in self._step_functions[1:]:
            step_columns.append(self._guarded_column(fn, pattern, batch, records))
        negation_columns = [
            [self._guarded_column(fn, pattern, batch, records) for fn, pattern in fns]
            for fns in self._negation_functions
        ]
        matches = operator.matcher.process_batch(keys, records, step_columns, negation_columns)
        if not matches:
            return RecordBatch.empty()
        return self._emit_batch(matches)

    def _emit_batch(self, matches: Sequence[Match]) -> RecordBatch:
        """The emission batch for a run of matches.

        Match payloads come from the (user-supplied) output builder, so the
        rows stay the batch's backbone — but their event times are the match
        end times the operator already holds, so the timestamp column is
        seeded instead of being re-derived row by row downstream.
        """
        emit = self.operator._emit
        rows = [emit(match) for match in matches]
        return RecordBatch.from_records(rows, timestamps=[row.timestamp for row in rows])

    def flush(self, metrics: MetricsCollector) -> RecordBatch:
        matches = self.operator.matcher.flush()
        if not matches:
            return RecordBatch.empty()
        return self._emit_batch(matches)

    def __repr__(self) -> str:
        return f"BatchCEP({self.operator!r})"


class BatchJoinOperator(BatchOperator):
    """Batch-native windowed equi-join: hash build/probe over column arrays.

    Shares the wrapped :class:`~repro.streaming.operators.JoinOperator`'s
    keyed per-side buffers (so state, eviction and merge semantics are the
    record engine's), but extracts key tuples and timestamps column-wise and
    probes without generator dispatch.  ``partition_keys`` remains the join
    keys, declared by the wrapped operator, so key-partitioned scheduling
    stays legal exactly when the stream is partitioned on a join key.
    """

    name = "join"

    def __init__(self, operator: JoinOperator, position: int) -> None:
        super().__init__(position)
        self.operator = operator

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        n = len(batch)
        metrics.record_operator(self.label, n)
        operator = self.operator
        keys = _key_rows_of(batch, operator.key_fields)
        records = batch.to_records()
        timestamps = batch.timestamps
        left, right = operator._left, operator._right
        window = operator.window
        evict, merge = operator._evict, operator._merge
        out: List[Record] = []
        for i, record in enumerate(records):
            side = record.data.get("_join_side", "left")
            key = keys[i]
            own, other = (left, right) if side == "left" else (right, left)
            own_buffer = own[key]
            own_buffer.append(record)
            timestamp = timestamps[i]
            evict(own_buffer, timestamp)
            other_buffer = other[key]
            evict(other_buffer, timestamp)
            if side == "left":
                for candidate in other_buffer:
                    if abs(candidate.timestamp - timestamp) <= window:
                        out.append(merge(record, candidate))
            else:
                for candidate in other_buffer:
                    if abs(candidate.timestamp - timestamp) <= window:
                        out.append(merge(candidate, record))
        return RecordBatch.from_records(out)

    def flush(self, metrics: MetricsCollector) -> RecordBatch:
        return RecordBatch.from_records(list(self.operator.flush()))

    def __repr__(self) -> str:
        return f"BatchJoin({self.operator!r})"


class NativeBatchOperator(BatchOperator):
    """Adapter for plugin operators that bring their own batch kernel.

    Operators declaring :attr:`~repro.streaming.operators.Operator.supports_batches`
    implement ``process_batch(batch) -> RecordBatch`` themselves (e.g. the
    NebulaMEOS spatial operators probing the grid index column-wise); this
    adapter only adds metric accounting.  A plugin participates in stage
    fusion only when it declares itself stateless (``partition_keys() == []``)
    **and** does not override ``flush`` — fused stages are never flushed, so
    an operator buffering records for end-of-stream must stay a standalone
    stage regardless of its partitioning declaration.
    """

    def __init__(self, operator: Operator, position: int) -> None:
        self.name = operator.name
        self.stateless = (
            operator.partition_keys() == [] and type(operator).flush is Operator.flush
        )
        super().__init__(position)
        self.operator = operator

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        return self.operator.process_batch(batch)

    def flush(self, metrics: MetricsCollector) -> RecordBatch:
        return RecordBatch.from_records(list(self.operator.flush()))

    def __repr__(self) -> str:
        return f"NativeBatch({self.operator!r})"


class RecordBridgeOperator(BatchOperator):
    """Runs an arbitrary record operator over the rows of each batch.

    The fallback path for operators with no vectorized equivalent: sinks and
    third-party plugin operators that do not declare ``supports_batches``
    (CEP, joins and every NebulaMEOS operator — spatial, trajectory and
    top-k — are batch-native).

    Cached-rows contract: materialized rows are cached *on the batch*, so
    several bridges in one pipeline share a single batch-to-records
    conversion.  The cache is guarded by :attr:`RecordBatch.version` — a
    batch mutated in place after materialization (``set_column``) re-derives
    its rows on the next access, so correctness never depends on whether the
    mutating stage ran before or after a bridge.
    """

    def __init__(self, operator: Operator, position: int, stateless: bool = False) -> None:
        self.name = operator.name
        self.stateless = stateless
        super().__init__(position)
        self.operator = operator

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        metrics.record_operator(self.label, len(batch))
        process = self.operator.process
        out: List[Record] = []
        for record in batch.to_records():
            out.extend(process(record))
        return RecordBatch.from_records(out)

    def flush(self, metrics: MetricsCollector) -> RecordBatch:
        return RecordBatch.from_records(list(self.operator.flush()))

    def __repr__(self) -> str:
        return f"RecordBridge({self.operator!r})"


class FusedBatchStage(BatchOperator):
    """Adjacent stateless operators fused into a single batch pass.

    One engine dispatch per batch covers the whole run of operators; the
    stage short-circuits as soon as a filter empties the batch.
    """

    name = "fused"
    stateless = True

    def __init__(self, operators: Sequence[BatchOperator]) -> None:
        super().__init__(operators[0].position)
        self.operators = list(operators)
        self.end_position = self.operators[-1].position + 1
        self.label = "+".join(op.label for op in self.operators)

    def process_batch(self, batch: RecordBatch, metrics: MetricsCollector) -> RecordBatch:
        if metrics.profile:
            # profiled runs attribute wall time to the *individual* fused
            # operators, matching the operator_events labels
            from time import perf_counter

            for operator in self.operators:
                if not len(batch):
                    break
                started = perf_counter()
                batch = operator.process_batch(batch, metrics)
                metrics.record_operator_time(operator.label, perf_counter() - started)
            return batch
        for operator in self.operators:
            if not len(batch):
                break
            batch = operator.process_batch(batch, metrics)
        return batch

    def __repr__(self) -> str:
        return f"FusedBatchStage({[op.label for op in self.operators]})"


def iter_operators(stages: Sequence[BatchOperator]) -> Iterator[BatchOperator]:
    """Every batch operator of a compiled pipeline, fused stages flattened.

    Convenience for introspection (the bridge-free assertions in the parity
    suite): stage fusion hides the individual operators inside
    :class:`FusedBatchStage`, and this restores the flat, position-ordered
    view.
    """
    for stage in stages:
        if isinstance(stage, FusedBatchStage):
            yield from stage.operators
        else:
            yield stage


def vectorize(position: int, operator: Operator) -> BatchOperator:
    """The batch equivalent of one compiled record operator.

    Built-in relational operators, CEP and joins all have batch-native
    equivalents; plugin operators declaring ``supports_batches`` run their own
    batch kernel.  The per-record bridge remains only for plugin operators
    without a batch kernel and for sinks.
    """
    kind = type(operator)
    if kind is FilterOperator:
        return VectorizedFilterOperator(operator.predicate, position)
    if kind is MapOperator:
        return VectorizedMapOperator(operator.assignments, position)
    if kind is ProjectOperator:
        return VectorizedProjectOperator(operator.fields, position)
    if kind is WindowAggregateOperator:
        return BatchWindowAggregateOperator(
            operator.assigner,
            operator.aggregations,
            operator.key_fields,
            operator.allowed_lateness,
            position,
        )
    if kind is CEPOperator:
        return BatchCEPOperator(operator, position)
    if kind is JoinOperator:
        return BatchJoinOperator(operator, position)
    if operator.supports_batches:
        return NativeBatchOperator(operator, position)
    return RecordBridgeOperator(operator, position, stateless=kind is FlatMapOperator)


def swap_buffering_sinks(
    operators: Sequence[Operator],
) -> Tuple[List[Operator], List[List[Record]]]:
    """Clone a compiled pipeline with every sink replaced by a buffering twin.

    Partitioned pipelines (thread or process pools) must not write shared
    sinks concurrently: each partition records what it *would* have written,
    and the engine drains the buffers into the real sinks through the same
    stable event-time merge that orders the output records — so a terminal
    sink sees exactly ``result.records``, and any sink sees the
    single-partition write sequence up to cross-partition timestamp ties.
    Returns the rewritten operator list plus the buffers, ordered like the
    compiled sink list (sinks appear in plan-node order in both).
    """
    swapped: List[Operator] = []
    buffers: List[List[Record]] = []
    for operator in operators:
        if type(operator) is SinkOperator:
            twin = BufferingSinkOperator()
            buffers.append(twin.buffer)
            swapped.append(twin)
        else:
            swapped.append(operator)
    return swapped, buffers


def build_batch_pipeline(
    operators: Sequence[Operator],
    entry_positions: Sequence[int] = (),
    fuse: bool = True,
) -> List[BatchOperator]:
    """Vectorize a compiled record pipeline and fuse adjacent stateless stages.

    ``entry_positions`` are pipeline positions where records from the right
    side of a binary node enter mid-pipeline; fusion never spans them so a
    partial batch can start at any entry point.
    """
    batch_operators = [vectorize(i, op) for i, op in enumerate(operators)]
    if not fuse:
        return batch_operators
    barriers = set(entry_positions)
    stages: List[BatchOperator] = []
    run: List[BatchOperator] = []

    def close_run() -> None:
        if not run:
            return
        stages.append(run[0] if len(run) == 1 else FusedBatchStage(list(run)))
        run.clear()

    for operator in batch_operators:
        if operator.position in barriers:
            close_run()
        if operator.stateless:
            run.append(operator)
        else:
            close_run()
            stages.append(operator)
    close_run()
    return stages
