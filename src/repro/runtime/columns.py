"""Typed, numpy-backed column storage for the batch runtime.

This module is the single place that decides how a :class:`RecordBatch`
column is physically represented.  Two backends exist:

* ``numpy`` (the default whenever numpy is importable) — columns are typed
  ``ndarray`` objects: homogeneous ``bool``/``int``/``float`` columns get a
  native dtype (``bool_``/``int64``/``float64``) so the expression compiler
  can run real ufunc kernels over them; every other column becomes an
  ``object``-dtype array, whose "ufuncs" dispatch the ordinary Python
  operators element-wise from a C loop — identical semantics (including
  which exception is raised, and for which row), just without interpreter
  bytecode per element.
* ``python`` — no arrays are ever produced; every kernel takes its
  pure-Python list path.  This is both the fallback when numpy is missing
  and a first-class backend selectable via ``REPRO_BATCH_BACKEND=python``
  (CI proves the whole suite green without numpy installed).

Exactness rules (these are what keep record-for-record parity *bit-exact*,
not approximate):

* A native dtype is only used for **type-homogeneous** columns.  A mixed
  ``int``/``float`` column stays ``object`` — promoting it to ``float64``
  would silently turn ``1`` into ``1.0`` in reconstructed records and lose
  integer exactness past 2**53.  (Spatial kernels that *want* the float64
  promotion — they cast per row anyway — use :func:`masked_floats`.)
* Python ints that overflow ``int64`` force the object representation, so
  arbitrary-precision arithmetic is preserved.
* Reconstruction is ``ndarray.tolist()``: for the three native dtypes this
  round-trips exactly (``np.float64 -> float`` is the identical IEEE value;
  ``int64 -> int``; ``bool_ -> bool``), and object arrays hand back the very
  same Python objects they were built from.

The env variable is read once at import; tests and the CLI switch with
:func:`set_backend`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import StreamError

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: The numpy module when the numpy backend is active, else ``None``.  All
#: array producers in the runtime consult this through :func:`get_numpy` so a
#: ``set_backend`` call takes effect immediately, with no re-imports.
_np = None

_BACKENDS = ("auto", "numpy", "python")


def resolve_backend(requested: Optional[str]) -> str:
    """The backend name for a requested value (``None``/"auto" pick numpy
    when importable)."""
    requested = requested or "auto"
    if requested not in _BACKENDS:
        raise StreamError(
            f"unknown REPRO_BATCH_BACKEND {requested!r}; expected one of {_BACKENDS}"
        )
    if requested == "numpy" and _numpy is None:
        raise StreamError("REPRO_BATCH_BACKEND=numpy requested but numpy is not importable")
    if requested == "auto":
        return "numpy" if _numpy is not None else "python"
    return requested


def set_backend(name: Optional[str]) -> str:
    """Select the column backend (``auto`` / ``numpy`` / ``python``).

    Returns the resolved backend name.  Takes effect for every batch built
    afterwards; batches already holding arrays keep them (their semantics do
    not depend on the active backend).
    """
    global _np
    resolved = resolve_backend(name)
    _np = _numpy if resolved == "numpy" else None
    return resolved


def active_backend() -> str:
    """The currently active column backend: ``"numpy"`` or ``"python"``."""
    return "python" if _np is None else "numpy"


def numpy_available() -> bool:
    return _numpy is not None


def get_numpy():
    """The numpy module if the numpy backend is active, else ``None``."""
    return _np


set_backend(os.environ.get("REPRO_BATCH_BACKEND"))


def is_ndarray(values: Any) -> bool:
    """Whether ``values`` is a numpy array (False when numpy is missing)."""
    return _numpy is not None and isinstance(values, _numpy.ndarray)


def as_list(values: Any) -> List[Any]:
    """A plain Python list for a column in either representation.

    ``tolist`` on the native dtypes yields Python scalars with the exact
    same values; object arrays return their original objects.
    """
    if _numpy is not None and isinstance(values, _numpy.ndarray):
        return values.tolist()
    return values if isinstance(values, list) else list(values)


# -- dtype inference -------------------------------------------------------------------


def typed_array(values: Sequence[Any]) -> Optional[Any]:
    """The typed ndarray for a hole-free column, or ``None`` (python backend).

    Dtype inference is sample-driven over the *whole* column (``set(map(type,
    ...))`` runs at C speed): exactly-``bool`` columns become ``bool_``,
    exactly-``int`` columns ``int64`` (falling back when a value overflows),
    exactly-``float`` columns ``float64``; anything else — mixed numerics,
    strings, ``None`` values, nested lists, plugin objects — becomes an
    ``object`` array holding the original Python objects.
    """
    np = _np
    if np is None:
        return None
    kinds = set(map(type, values))
    if kinds == {bool}:
        return np.asarray(values, dtype=np.bool_)
    if kinds == {int}:
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:
            return _object_array(values)
    if kinds == {float}:
        return np.asarray(values, dtype=np.float64)
    return _object_array(values)


def _object_array(values: Sequence[Any]) -> Any:
    """An object-dtype array of the exact Python objects in ``values``.

    ``np.fromiter`` treats every item as one element, so list- or
    array-valued cells never trigger numpy's nested-sequence broadcasting.
    """
    return _np.fromiter(values, dtype=object, count=len(values))


# -- columnar emission -----------------------------------------------------------------


#: Dtypes a kernel may declare for an output column.  Declaring one is a
#: *contract*: every appended value is already of the matching Python type
#: (``float`` / ``int`` / ``bool``), or — for ``object`` — the column should
#: skip native-dtype inference entirely.  The builder then materializes the
#: typed array straight from the accumulated values, so downstream batches
#: never re-run ``set(map(type, ...))`` inference over emitted columns.
DECLARABLE_DTYPES = ("float64", "int64", "bool", "object")


class ColumnBuilder:
    """Accumulates one output column for a batch under construction.

    Kernels append scalars (one emission at a time) or extend with whole
    runs (a ``reduceat`` result, a ``tolist`` slice).  ``dtype`` is declared
    by the kernel when it can *prove* the column's type — e.g. window bounds
    are always ``float``, ``Count`` results always ``int`` — and left
    ``None`` when it cannot (a ``Min`` over an arbitrary expression), in
    which case the finished column is a plain list and downstream batches
    infer lazily exactly as for record-built batches.
    """

    __slots__ = ("dtype", "values")

    def __init__(self, dtype: Optional[str] = None) -> None:
        if dtype is not None and dtype not in DECLARABLE_DTYPES:
            raise StreamError(
                f"undeclarable column dtype {dtype!r}; expected one of {DECLARABLE_DTYPES}"
            )
        self.dtype = dtype
        self.values: List[Any] = []

    def append(self, value: Any) -> None:
        self.values.append(value)

    def extend(self, values: Sequence[Any]) -> None:
        self.values.extend(values)

    def build(self) -> Any:
        """The finished column: a typed ndarray when a dtype was declared and
        the numpy backend is active, else the plain value list."""
        np = _np
        if np is None or self.dtype is None:
            return self.values
        if self.dtype == "object":
            return _object_array(self.values)
        return np.asarray(self.values, dtype=np.dtype(self.dtype))


def object_column(values: List[Any]) -> Any:
    """A finished hole-free column declared object-dtype.

    One-call form of ``ColumnBuilder("object")`` for kernels that already
    hold the full value list (trajectory/top-k emissions): the objects go
    into an object ndarray under the numpy backend — downstream array access
    skips dtype inference — and stay the plain list under the python one.
    """
    np = _np
    return values if np is None else _object_array(values)


class BatchBuilder:
    """Accumulates a whole output batch as typed columns plus timestamps.

    The columnar counterpart of collecting emitted records in a list:
    operators declare their output schema once (:meth:`column`), append one
    value per column per emission plus the emission timestamp, and
    :meth:`finish` produces a purely column-backed
    :class:`~repro.runtime.batch.RecordBatch` — no per-record dict assembly,
    no row-to-column re-transposition downstream, and declared-dtype columns
    arrive as ready typed arrays.

    ``timestamp_field`` optionally names a declared ``float64`` column whose
    array doubles as the batch's timestamp array (window emissions stamp
    records with ``window_end``), saving the separate conversion.
    """

    __slots__ = ("columns", "timestamps", "timestamp_field")

    def __init__(self, timestamp_field: Optional[str] = None) -> None:
        self.columns: Dict[str, ColumnBuilder] = {}
        self.timestamps: List[float] = []
        self.timestamp_field = timestamp_field

    def column(self, name: str, dtype: Optional[str] = None) -> ColumnBuilder:
        """Declare (or fetch) one output column, in schema order."""
        builder = self.columns.get(name)
        if builder is None:
            builder = self.columns[name] = ColumnBuilder(dtype)
        return builder

    def __len__(self) -> int:
        return len(self.timestamps)

    def finish(self):
        """The accumulated emissions as a column-backed ``RecordBatch``."""
        from repro.runtime.batch import RecordBatch

        if not self.timestamps:
            return RecordBatch.empty()
        columns = {name: builder.build() for name, builder in self.columns.items()}
        ts_array = None
        if self.timestamp_field is not None:
            candidate = columns.get(self.timestamp_field)
            if is_ndarray(candidate) and candidate.dtype.kind == "f":
                ts_array = candidate
        return RecordBatch.from_columns(columns, self.timestamps, ts_array=ts_array)


def masked_floats(values: Sequence[Any], missing: Any) -> Optional[Tuple[Any, Any]]:
    """``(float64 values, bool validity)`` for a numeric column with holes.

    This is the ``column_or_none`` counterpart for coordinate kernels: every
    ``int``/``float``/``bool`` value is promoted to ``float64`` (the kernels
    cast per row anyway, so the promotion loses nothing they used), and
    ``None`` / ``missing``-sentinel entries are marked invalid (validity
    ``False``) with a ``0.0`` fill.  Returns ``None`` when the column holds
    anything else (or under the python backend) — callers fall back to their
    per-row path, preserving whatever error the row-wise code would raise.
    """
    np = _np
    if np is None:
        return None
    kinds = set(map(type, values))
    plain = kinds <= {int, float, bool}
    if plain:
        try:
            return np.asarray(values, dtype=np.float64), None
        except OverflowError:
            return None
    if not kinds <= {int, float, bool, type(None), type(missing)}:
        return None
    try:
        array = _object_array(values)
        invalid = array == None  # noqa: E711 - elementwise None test
        if missing is not None:
            invalid |= array == missing
        filled = array.copy()
        filled[invalid] = 0.0
        return filled.astype(np.float64), ~invalid
    except Exception:
        return None
