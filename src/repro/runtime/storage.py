"""Per-source columnar storage for replay sources.

A :class:`~repro.streaming.source.ListSource` replays an immutable in-memory
record buffer.  Chunking it into row-backed batches makes every query
re-transpose the touched fields into columns — per batch, per execution.
This module moves that work to the storage layer: a
:class:`SourceColumnCache` attached to the source transposes each touched
field **once** (lists, typed ndarrays, masked float views and the timestamp
array), and :class:`SourceBatch` serves per-batch columns as C-level
slices/views of the cached full columns.  Repeated executions over the same
source — the common benchmarking and replay pattern — skip the transposition
entirely.

The cache holds only the fields queries actually touch, and is keyed to the
identity of the record buffer *and* the active column backend, so a rebuilt
source (new records) or a backend switch (typed arrays under ``numpy``,
``None`` placeholders under ``python``) never sees stale columns.  Semantics are identical to ``RecordBatch.from_records`` over
the same row slice: the rows themselves remain the batch's backbone
(``to_records`` returns the original record objects), and the MISSING/None
distinctions of heterogeneous buffers are preserved.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runtime.batch import MISSING, RecordBatch
from repro.runtime.columns import active_backend, get_numpy, masked_floats, typed_array
from repro.streaming.record import Record


class SourceColumnCache:
    """Lazily transposed full-length columns for one record buffer."""

    __slots__ = (
        "records",
        "backend",
        "_lists",
        "_arrays",
        "_numeric",
        "_none_masks",
        "_timestamps",
        "_ts_array",
    )

    def __init__(self, records: Sequence[Record]) -> None:
        self.records = records
        self.backend = active_backend()
        self._lists: Dict[str, Tuple[List[Any], bool]] = {}
        self._arrays: Dict[str, Any] = {}
        self._numeric: Dict[str, Any] = {}
        self._none_masks: Dict[str, Any] = {}
        self._timestamps: Optional[List[float]] = None
        self._ts_array: Any = None

    @classmethod
    def of(cls, source: Any) -> "SourceColumnCache":
        """The cache attached to a source, (re)built when its buffer changed.

        Also rebuilt when the column backend changed since the cache was
        populated: the memoized arrays/views are backend-specific (``None``
        placeholders under ``python``), so a backend switch mid-session —
        the benchmark suites do this — must not serve stale entries.
        """
        records = source.records_list()
        cache = getattr(source, "_runtime_column_cache", None)
        if (
            cache is None
            or cache.records is not records
            or cache.backend != active_backend()
        ):
            cache = SourceColumnCache(records)
            source._runtime_column_cache = cache
        return cache

    def list_column(self, name: str) -> Tuple[Optional[List[Any]], bool]:
        """``(full column, has_missing)``; column is None when no record has
        the field."""
        entry = self._lists.get(name)
        if entry is None:
            records = self.records
            try:
                full = [r.data[name] for r in records]
                has_missing = False
            except KeyError:
                full = [r.data.get(name, MISSING) for r in records]
                has_missing = True
                if all(value is MISSING for value in full):
                    full = None  # type: ignore[assignment]
            entry = self._lists[name] = (full, has_missing)
        return entry

    def array_column(self, name: str):
        """The full typed array for a hole-free column, else ``None``."""
        if name in self._arrays:
            return self._arrays[name]
        full, has_missing = self.list_column(name)
        array = None if has_missing or full is None else typed_array(full)
        self._arrays[name] = array
        return array

    def numeric_column(self, name: str):
        """The full ``(float64 values, validity)`` view, else ``None``."""
        if name in self._numeric:
            return self._numeric[name]
        full, _ = self.list_column(name)
        entry = None if full is None else masked_floats(full, MISSING)
        self._numeric[name] = entry
        return entry

    def none_masks(self, name: str):
        """``(is_none, not_none)`` bool arrays for a MISSING-free column.

        ``None`` when the column is absent, MISSING-holed (``x != None``
        must then raise through the regular column path, like the record
        engine does for rows lacking the field) or not maskable.
        """
        if name in self._none_masks:
            return self._none_masks[name]
        entry = None
        array = self.array_column(name)
        if array is not None:
            np = get_numpy()
            try:
                if array.dtype.kind == "O":
                    is_none = array == None  # noqa: E711 - elementwise None test
                else:
                    is_none = np.zeros(len(array), dtype=bool)
                if is_none.dtype == np.bool_:
                    entry = (is_none, ~is_none)
            except Exception:
                entry = None
        self._none_masks[name] = entry
        return entry

    def timestamps(self) -> List[float]:
        if self._timestamps is None:
            self._timestamps = [r.timestamp for r in self.records]
        return self._timestamps

    def timestamps_array(self):
        if self._ts_array is None:
            np = get_numpy()
            if np is None:
                return None
            self._ts_array = np.asarray(self.timestamps(), dtype=np.float64)
        return self._ts_array


class SourceBatch(RecordBatch):
    """A batch over a contiguous slice of a cached replay source.

    Behaves exactly like ``RecordBatch.from_records(records[start:stop])``,
    but serves columns by slicing the source cache: lists via C-level list
    slices, arrays and masked float views as zero-copy ndarray views.  All
    derived batches (compress/take/map outputs) are ordinary
    :class:`RecordBatch` objects.
    """

    __slots__ = ("_view", "_start", "_stop")

    @classmethod
    def for_slice(
        cls, cache: SourceColumnCache, rows: List[Record], start: int, stop: int
    ) -> "SourceBatch":
        batch = cls._raw()
        batch._rows = rows
        batch._length = len(rows)
        batch._view = cache
        batch._start = start
        batch._stop = stop
        return batch

    @classmethod
    def _adopt(
        cls, base: RecordBatch, view: SourceColumnCache, start: int, stop: int
    ) -> "SourceBatch":
        """Re-attach the source view to a row-aligned derived batch."""
        batch = cls.__new__(cls)
        for slot in RecordBatch.__slots__:
            setattr(batch, slot, getattr(base, slot))
        batch._view = view
        batch._start = start
        batch._stop = stop
        return batch

    def with_columns(self, updates, has_missing: bool = False) -> "SourceBatch":
        # Row-aligned derivation: untouched columns still resolve to slices
        # of the source cache instead of per-batch row transposition.
        return self._adopt(
            super().with_columns(updates, has_missing), self._view, self._start, self._stop
        )

    def slice(self, start: int, stop: int) -> "SourceBatch":
        norm_start, norm_stop, _ = slice(start, stop).indices(self._length)  # type: ignore[misc]
        return self._adopt(
            super().slice(norm_start, norm_stop),
            self._view,
            self._start + norm_start,
            self._start + norm_stop,
        )

    # -- cache-backed column access ------------------------------------------------

    @property
    def timestamps(self) -> List[float]:
        if self._timestamps is None:
            self._timestamps = self._view.timestamps()[self._start : self._stop]
        return self._timestamps

    def timestamps_array(self):
        if self._ts_array is None:
            full = self._view.timestamps_array()
            if full is None:
                return None
            self._ts_array = full[self._start : self._stop]
        return self._ts_array

    def _materialize(self, name: str) -> Optional[List[Any]]:
        values = self._columns.get(name)
        if values is not None:
            return values
        array = self._arrays.get(name)
        if array is not None:
            values = array.tolist()
            self._columns[name] = values
            return values
        full, has_missing = self._view.list_column(name)
        if full is None:
            return None
        values = full[self._start : self._stop]
        if has_missing:
            self._missing.add(name)
        self._columns[name] = values
        return values

    def _updated(self, name: str) -> bool:
        """Whether the column was overwritten after the slice was taken
        (``with_columns`` list updates / ``set_column``) — the source cache
        then holds stale pre-update values and must not be consulted."""
        updates = self._updates
        return updates is not None and name in updates

    def array(self, name: str):
        array = self._arrays.get(name)
        if array is not None:
            return array
        if get_numpy() is None:
            return None
        full = None if self._updated(name) else self._view.array_column(name)
        if full is None:
            # updated / absent / MISSING-holed / non-cacheable: the base
            # implementation serves the live column (and raises exactly like
            # column() where it must)
            return super().array(name)
        view = full[self._start : self._stop]
        self._arrays[name] = view
        return view

    def none_mask(self, name: str, invert: bool):
        if get_numpy() is None or self._updated(name):
            return None
        entry = self._view.none_masks(name)
        if entry is None:
            return None
        return entry[1 if invert else 0][self._start : self._stop]

    def numeric_or_none(self, name: str):
        cached = self._numeric.get(name, _UNSET)
        if cached is not _UNSET:
            return cached
        if get_numpy() is None:
            self._numeric[name] = None
            return None
        full = None if self._updated(name) else self._view.numeric_column(name)
        if full is None:
            return super().numeric_or_none(name)
        values, valid = full
        start, stop = self._start, self._stop
        result = (
            values[start:stop],
            None if valid is None else valid[start:stop],
        )
        self._numeric[name] = result
        return result


_UNSET = object()


def iter_source_batches(source: Any, batch_size: int) -> Iterator[SourceBatch]:
    """Chunk a replay source into cache-backed batches by list slicing."""
    cache = SourceColumnCache.of(source)
    records = cache.records
    total = len(records)
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        yield SourceBatch.for_slice(cache, records[start:stop], start, stop)  # type: ignore[arg-type]
