"""Vectorized micro-batch execution runtime.

The runtime executes the same logical plans as the record-at-a-time engine in
:mod:`repro.streaming.engine`, but moves data through the pipeline in
columnar micro-batches:

* :class:`RecordBatch` — a dict-of-lists container with per-field arrays,
  cheap slicing and batch-level byte accounting, plus :func:`batchify` /
  :func:`unbatchify` adapters between record streams and batch streams;
* :func:`compile_expression` — compiles the streaming expression trees into
  closures evaluated over whole columns;
* batch-native operators (vectorized filter/map/project, batch windowed
  aggregation) with a per-record bridge for CEP, joins, sinks and plugin
  operators;
* :class:`BatchExecutionEngine` — compiles existing
  :class:`~repro.streaming.query.Query` plans unchanged, fuses adjacent
  stateless stages, and optionally runs key-partitioned batches across a
  thread pool (``num_partitions``).

Outputs are record-for-record identical to the record engine; the speedup
comes purely from amortizing Python interpreter overhead over whole batches.
"""

from repro.runtime.batch import MISSING, RecordBatch, batchify, unbatchify
from repro.runtime.compiler import ColumnFunction, compile_expression
from repro.runtime.engine import BatchExecutionEngine
from repro.runtime.operators import (
    BatchOperator,
    BatchWindowAggregateOperator,
    FusedBatchStage,
    RecordBridgeOperator,
    VectorizedFilterOperator,
    VectorizedMapOperator,
    VectorizedProjectOperator,
    build_batch_pipeline,
    vectorize,
)

__all__ = [
    "MISSING",
    "RecordBatch",
    "batchify",
    "unbatchify",
    "ColumnFunction",
    "compile_expression",
    "BatchExecutionEngine",
    "BatchOperator",
    "BatchWindowAggregateOperator",
    "FusedBatchStage",
    "RecordBridgeOperator",
    "VectorizedFilterOperator",
    "VectorizedMapOperator",
    "VectorizedProjectOperator",
    "build_batch_pipeline",
    "vectorize",
]
