"""Vectorized micro-batch execution runtime.

The runtime executes the same logical plans as the record-at-a-time engine in
:mod:`repro.streaming.engine`, but moves data through the pipeline in
columnar micro-batches:

* :class:`RecordBatch` — a dict-of-lists container with per-field arrays,
  cheap slicing and batch-level byte accounting, plus :func:`batchify` /
  :func:`unbatchify` adapters between record streams and batch streams;
* :func:`compile_expression` — compiles the streaming expression trees into
  closures evaluated over whole columns, with a :func:`register_vectorizer`
  registry for plugin expression kernels;
* batch-native operators (vectorized filter/map/project, batch windowed
  aggregation, CEP via NFA column stepping, hash joins, and plugin batch
  kernels via ``Operator.supports_batches``) with a per-record bridge only
  for batch-less plugin operators and sinks;
* :class:`BatchExecutionEngine` — compiles existing
  :class:`~repro.streaming.query.Query` plans unchanged, fuses adjacent
  stateless stages, and optionally runs key-partitioned batches across a
  thread pool (``num_partitions``).

Outputs are record-for-record identical to the record engine; the speedup
comes purely from amortizing Python interpreter overhead over whole batches.
"""

from repro.runtime.batch import MISSING, RecordBatch, batchify, unbatchify
from repro.runtime.columns import BatchBuilder, ColumnBuilder
from repro.runtime.compiler import ColumnFunction, compile_expression, register_vectorizer
from repro.runtime.engine import BatchExecutionEngine
from repro.runtime.operators import (
    BatchCEPOperator,
    BatchJoinOperator,
    BatchOperator,
    BatchWindowAggregateOperator,
    FusedBatchStage,
    NativeBatchOperator,
    RecordBridgeOperator,
    VectorizedFilterOperator,
    VectorizedMapOperator,
    VectorizedProjectOperator,
    build_batch_pipeline,
    vectorize,
)
from repro.runtime.pool import WorkerPool

__all__ = [
    "WorkerPool",
    "MISSING",
    "RecordBatch",
    "BatchBuilder",
    "ColumnBuilder",
    "batchify",
    "unbatchify",
    "ColumnFunction",
    "compile_expression",
    "register_vectorizer",
    "BatchExecutionEngine",
    "BatchCEPOperator",
    "BatchJoinOperator",
    "BatchOperator",
    "BatchWindowAggregateOperator",
    "FusedBatchStage",
    "NativeBatchOperator",
    "RecordBridgeOperator",
    "VectorizedFilterOperator",
    "VectorizedMapOperator",
    "VectorizedProjectOperator",
    "build_batch_pipeline",
    "vectorize",
]
