"""Process-pool partition execution over shared-memory columns.

The thread-pool scheduler in :mod:`repro.runtime.engine` is GIL-bound:
partitioned speedups cap out well below core count because the partitions
time-slice one interpreter.  This module provides the
``parallelism="process"`` path — the same hash-partitioned plan layout, but
each partition runs in a **forked worker process** with its own interpreter
and GIL.

Compiled pipelines hold closures (compiled column expressions, UDF lambdas,
zone-index captures), so they are deliberately never pickled.  Instead the
parent stashes everything a worker needs in a module-global
:data:`_WORKER_CONTEXT` *before* creating the pool; the ``fork`` start
method makes the children inherit it, and each pool task is just a partition
index.  Workers rebuild their pipeline from the logical plan
(``engine.compile(plan)`` — cheap relative to a partition's work) and only
the **results** cross process boundaries: output records, per-sink buffers
and a metrics payload (operator counters/times, adaptivity stats) that the
parent merges into the regular :class:`MetricsReport`.

Input rows travel two ways:

* **columns mode** — linear replay plans on the numpy backend (the Q1/Q8
  shape).  The parent exports the :class:`SourceColumnCache`'s typed
  columns once into a single ``multiprocessing.shared_memory`` block,
  permuted so each partition's rows form one contiguous region; workers map
  zero-copy ``ndarray`` views over the block and build column-backed
  batches from slices.  Object-dtype and MISSING-holed columns (strings,
  heterogeneous payloads) don't have a flat native representation; they are
  served from the fork-inherited cache lists by gathered index.
* **split-columns mode** — map-derived-key plans (the Q4 ``cell_id``
  shape) on the numpy backend.  The parent runs the pre-split prefix
  itself (exactly like the thread path), then re-transposes the prefix's
  *output* records into a second :class:`SourceColumnCache` and ships them
  through the same shared-memory export; rows that enter mid-pipeline
  (join/union right sides) stay fork-inherited record segments, replayed
  in the original timestamp-interleaved order.
* **records mode** — everything else (the pure-python backend, non-replay
  sources, adaptive batching).  The parent scatters ``(entry, record)``
  pairs exactly like the thread path and the partitions are inherited by
  the forked workers; nothing is pickled on the way in.

Shared-memory lifecycle: the block is created, written and **unlinked by
the parent only**, inside ``try/finally``, so a crashing worker (or a
raising operator) cannot leak ``/dev/shm`` segments.  Forked children use
the inherited mapping and never attach by name, which also sidesteps the
resource-tracker double-unlink wart on attach-by-name openers.

Where ``fork`` is unavailable (Windows/macOS-spawn), the engine falls back
to the thread pool — same results, intra-process parallelism only.
"""

from __future__ import annotations

import heapq
import os
import struct
import sys
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.batch import MISSING, RecordBatch
from repro.runtime.columns import get_numpy
from repro.runtime.operators import build_batch_pipeline, swap_buffering_sinks
from repro.streaming.engine import abort_execution
from repro.streaming.metrics import (
    MetricsCollector,
    adaptivity_stats_of,
    merge_adaptivity_stats,
)
from repro.streaming.record import Record


# -- stable partition hashing ------------------------------------------------------


_NONE_HASH = 0x9E3779B9


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent partition hash.

    The builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so two
    runs — or a parent and its spawn-started workers — would disagree on
    partition assignment.  This hash is pure arithmetic/CRC32 and therefore
    reproducible everywhere, while preserving the equality semantics
    partitioning relies on: values that compare equal must co-hash, so
    ``True``/``1``/``1.0`` (one dict key in a record) land in the same
    partition, exactly like ``hash()``.
    """
    if value is None:
        return _NONE_HASH
    if isinstance(value, bool):
        value = int(value)
    elif isinstance(value, float):
        if value.is_integer():
            value = int(value)
        else:
            return zlib.crc32(struct.pack("<d", value))
    if isinstance(value, int):
        return value & 0x7FFFFFFFFFFFFFFF
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        acc = 0x811C9DC5
        for item in value:
            acc = ((acc ^ stable_hash(item)) * 0x01000193) & 0xFFFFFFFF
        return acc
    return zlib.crc32(repr(value).encode("utf-8"))


def process_pool_available() -> bool:
    """Whether fork-based worker processes can run on this platform.

    The design requires ``fork``: workers inherit the compiled context
    (closures and all) instead of unpickling it, which ``spawn`` cannot do.
    """
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# -- shared-memory column export ---------------------------------------------------


class SharedColumnExport:
    """One shared-memory block holding the partition-permuted typed columns.

    Layout: for each exported field, the full column gathered by ``perm``
    (the concatenation of the per-partition row-index lists) so that
    partition ``i`` owns the contiguous region ``bounds[i]:bounds[i+1]`` of
    every column; the permuted ``float64`` timestamp column sits last.
    Workers reconstruct zero-copy views from ``specs`` —
    ``(field, dtype_str, byte_offset)`` triples — over the inherited
    mapping.
    """

    __slots__ = ("shm", "specs", "ts_offset", "bounds", "length")

    def __init__(self, shm, specs, ts_offset, bounds, length) -> None:
        self.shm = shm
        self.specs = specs
        self.ts_offset = ts_offset
        self.bounds = bounds
        self.length = length

    @classmethod
    def build(
        cls, cache, field_order: Sequence[str], perm, bounds: List[int]
    ) -> Tuple["SharedColumnExport", List[str]]:
        """Export every native-dtype column of ``cache`` permuted by ``perm``.

        Only homogeneous ``bool``/``int64``/``float64`` columns have a flat
        byte representation (``typed_array`` returns object arrays for
        anything else — those stay with the fork-inherited list columns).
        Returns the export plus the names that made it into the block.
        """
        from multiprocessing import shared_memory

        np = get_numpy()
        native: List[Tuple[str, Any]] = []
        for name in field_order:
            array = cache.array_column(name)
            if array is not None and array.dtype.kind in "bif":
                native.append((name, array))
        length = len(perm)
        total = sum(array.dtype.itemsize for _, array in native) * length
        total += 8 * length  # float64 timestamps
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        specs: List[Tuple[str, str, int]] = []
        offset = 0
        try:
            for name, array in native:
                gathered = array[perm]
                view = np.ndarray(gathered.shape, dtype=gathered.dtype, buffer=shm.buf, offset=offset)
                view[:] = gathered
                specs.append((name, gathered.dtype.str, offset))
                offset += gathered.nbytes
                # writer views must not outlive this scope: close() raises
                # BufferError while exports of shm.buf are alive
                del view
            ts = cache.timestamps_array()[perm]
            view = np.ndarray(ts.shape, dtype=np.float64, buffer=shm.buf, offset=offset)
            view[:] = ts
            del view
        except BaseException:
            cls._release(shm)
            raise
        return cls(shm, specs, offset, bounds, length), [name for name, _ in native]

    def attach(self) -> Tuple[Dict[str, Any], Any]:
        """Full-length zero-copy views over the block (worker side).

        The views are marked read-only: workers must never mutate the shared
        block (a persistent pool re-serves it to later executions), and a
        kernel that tried to write in place should fail loudly rather than
        corrupt every sibling partition.
        """
        np = get_numpy()
        arrays = {}
        for name, dtype, offset in self.specs:
            view = np.ndarray((self.length,), dtype=np.dtype(dtype), buffer=self.shm.buf, offset=offset)
            view.flags.writeable = False
            arrays[name] = view
        timestamps = np.ndarray(
            (self.length,), dtype=np.float64, buffer=self.shm.buf, offset=self.ts_offset
        )
        timestamps.flags.writeable = False
        return arrays, timestamps

    @staticmethod
    def _release(shm) -> None:
        # unlink before close: even if close() trips on a live view export,
        # the segment is already gone from /dev/shm
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        try:
            shm.close()
        except BufferError:
            pass

    def close(self) -> None:
        """Unlink + unmap (parent side, ``finally``-driven)."""
        self._release(self.shm)


# -- the fork-inherited worker context ---------------------------------------------


_WORKER_CONTEXT: Optional["_WorkerContext"] = None


class _WorkerContext:
    """Everything a forked partition worker needs, inherited — never pickled."""

    __slots__ = (
        "engine",
        "plan",
        "query_name",
        "split",
        "mode",
        "partitions",
        "export",
        "list_columns",
        "field_order",
        "shm_fields",
        "perm",
        "segments",
    )

    def __init__(
        self,
        engine,
        plan,
        query_name: str,
        split: int,
        mode: str,
        partitions: Optional[List[List[Tuple[int, Record]]]] = None,
        export: Optional[SharedColumnExport] = None,
        list_columns: Optional[Dict[str, Tuple[List[Any], bool]]] = None,
        field_order: Optional[List[str]] = None,
        shm_fields: Optional[Sequence[str]] = None,
        perm=None,
        segments: Optional[List[List[List[Any]]]] = None,
    ) -> None:
        self.engine = engine
        self.plan = plan
        self.query_name = query_name
        self.split = split
        self.mode = mode
        self.partitions = partitions
        self.export = export
        self.list_columns = list_columns or {}
        self.field_order = field_order or []
        self.shm_fields = frozenset(shm_fields or ())
        self.perm = perm
        self.segments = segments

    def compile_pipeline(self):
        """Worker-side pipeline: recompiled from the logical plan, sinks
        swapped for buffering twins.  Returns ``(stages, operators,
        sink_buffers)`` — the persistent pool caches this triple per context
        so warm executions skip recompilation."""
        engine = self.engine
        operators, _, entries = engine.compile(self.plan)
        operators, sink_buffers = swap_buffering_sinks(operators)
        barriers = set(entries.values())
        if self.split:
            barriers.add(self.split)
        stages = build_batch_pipeline(operators, barriers, fuse=engine.fuse)
        return stages, operators, sink_buffers

    def drive(self, index: int, stages, local, out: List[Record]) -> None:
        """Push partition ``index``'s input through ``stages`` (incl. flush)."""
        engine = self.engine
        if self.mode == "columns":
            self._run_columns(index, stages, local, out)
        elif self.mode == "split-columns":
            self._run_split_columns(index, stages, local, out)
        else:
            for entry_index, records in engine._chunk_runs(self.partitions[index]):
                batch = engine._run_through(
                    stages, RecordBatch.from_records(records), entry_index, local
                )
                if batch is not None and len(batch):
                    out.extend(batch.to_records())
        engine._flush_stages(stages, local, out)

    def run(self, index: int) -> Dict[str, Any]:
        stages, operators, sink_buffers = self.compile_pipeline()
        local = MetricsCollector(self.query_name, profile=self.engine.profile)
        out: List[Record] = []
        self.drive(index, stages, local, out)
        return {
            "records": out,
            "sinks": sink_buffers,
            "operator_events": local.operator_events,
            "operator_seconds": local.operator_seconds,
            "adaptivity": adaptivity_stats_of(operators),
            "pid": os.getpid(),
        }

    def _slice_batch(self, shm_arrays, shm_ts, begin: int, end: int) -> RecordBatch:
        """A column-backed batch over export rows ``begin:end``.

        Native columns become zero-copy view slices; list-backed columns are
        gathered from the inherited full columns by source row index, with
        the same conservative MISSING marking as ``SourceBatch`` (``column``
        self-heals markers for hole-free slices).  ``perm`` maps export rows
        back to source rows; ``None`` means the export is already in source
        order (the split-columns re-transposition).
        """
        perm = self.perm
        batch = RecordBatch._raw()
        for name in self.field_order:
            if name in self.shm_fields:
                batch._arrays[name] = shm_arrays[name][begin:end]
            else:
                full, has_missing = self.list_columns[name]
                indices = perm[begin:end] if perm is not None else range(begin, end)
                batch._columns[name] = [full[i] for i in indices]
                if has_missing:
                    batch._missing.add(name)
        ts_view = shm_ts[begin:end]
        batch._field_order = list(self.field_order)
        batch._timestamps = ts_view.tolist()
        batch._ts_array = ts_view
        batch._length = end - begin
        return batch

    def _run_columns(self, index: int, stages, local, out: List[Record]) -> None:
        """Drive the partition's contiguous shared-memory region batch-wise."""
        engine = self.engine
        shm_arrays, shm_ts = self.export.attach()
        start, stop = self.export.bounds[index], self.export.bounds[index + 1]
        batch_size = max(1, engine.batch_size)
        for begin in range(start, stop, batch_size):
            end = min(begin + batch_size, stop)
            batch = self._slice_batch(shm_arrays, shm_ts, begin, end)
            batch = engine._run_through(stages, batch, 0, local)
            if batch is not None and len(batch):
                out.extend(batch.to_records())

    def _run_split_columns(self, index: int, stages, local, out: List[Record]) -> None:
        """Drive a map-derived-key partition: shm column runs + record runs.

        The partition's input is an ordered list of segments — ``cols``
        segments reference contiguous rows of the prefix-output export and
        enter the pipeline at the split barrier; ``recs`` segments are
        fork-inherited records entering at their own position (join/union
        right sides).  Segment order preserves the original
        timestamp-interleaving of the scatter, so stateful operators see
        events in the same order as the record path.
        """
        engine = self.engine
        split = self.split
        batch_size = max(1, engine.batch_size)
        shm_arrays = shm_ts = None
        for segment in self.segments[index]:
            if segment[0] == "cols":
                if shm_arrays is None:
                    shm_arrays, shm_ts = self.export.attach()
                start, stop = segment[1], segment[2]
                for begin in range(start, stop, batch_size):
                    end = min(begin + batch_size, stop)
                    batch = self._slice_batch(shm_arrays, shm_ts, begin, end)
                    batch = engine._run_through(stages, batch, split, local)
                    if batch is not None and len(batch):
                        out.extend(batch.to_records())
            else:
                entry_index, records = segment[1], segment[2]
                for begin in range(0, len(records), batch_size):
                    batch = engine._run_through(
                        stages,
                        RecordBatch.from_records(records[begin:begin + batch_size]),
                        entry_index,
                        local,
                    )
                    if batch is not None and len(batch):
                        out.extend(batch.to_records())


def _run_partition_worker(index: int) -> Dict[str, Any]:
    """Pool task: run one partition against the fork-inherited context."""
    context = _WORKER_CONTEXT
    if context is None:
        raise RuntimeError(
            "no process-partition context: workers must be forked from the "
            "executing parent (spawn cannot inherit compiled pipelines)"
        )
    return context.run(index)


# -- parent-side orchestration -----------------------------------------------------


def _discover_field_order(records) -> List[str]:
    """Field names in first-appearance order across a record sequence."""
    field_order: List[str] = []
    seen = set()
    for record in records:
        for name in record.data:
            if name not in seen:
                seen.add(name)
                field_order.append(name)
    return field_order


def account_columns_input(engine, plan, metrics) -> None:
    """Replay the input-side accounting of a columns-mode execution.

    Input accounting (``events_in``/``bytes_in``) reproduces the
    single-partition batch path exactly: byte estimates come from the same
    ``SourceBatch`` estimator over the same slicing.  Split out so a warm
    pool execution (which skips the scatter entirely) still reports the
    same metrics as a cold one.
    """
    from repro.runtime.storage import SourceBatch, SourceColumnCache

    cache = SourceColumnCache.of(plan.source_node.source)
    records = cache.records
    total = len(records)
    measure_bytes = engine.measure_bytes
    step = max(1, engine.batch_size)
    for start in range(0, total, step):
        stop = min(start + step, total)
        if measure_bytes:
            chunk = SourceBatch.for_slice(cache, records[start:stop], start, stop)
            metrics.record_in(stop - start, chunk.estimate_bytes())
        else:
            metrics.record_in(stop - start, 0)


def _build_columns_context(engine, plan, query_name: str, metrics) -> Tuple[_WorkerContext, List[int]]:
    """Scatter a replay source's cached columns into a shared-memory export.

    Partition assignment hashes the cached partition-key column directly —
    no per-record dict probing, no row materialization.
    """
    from repro.runtime.storage import SourceColumnCache

    np = get_numpy()
    source = plan.source_node.source
    cache = SourceColumnCache.of(source)
    records = cache.records
    total = len(records)
    account_columns_input(engine, plan, metrics)

    field_order = _discover_field_order(records)

    num_partitions = engine.num_partitions
    index_lists: List[List[int]] = [[] for _ in range(num_partitions)]
    key_column, _ = cache.list_column(engine.partition_key)
    if key_column is None:
        index_lists[_NONE_HASH % num_partitions] = list(range(total))
    else:
        for i, key in enumerate(key_column):
            if key is MISSING:
                key = None
            index_lists[stable_hash(key) % num_partitions].append(i)
    bounds = [0]
    for indices in index_lists:
        bounds.append(bounds[-1] + len(indices))
    perm = (
        np.concatenate([np.asarray(ix, dtype=np.intp) for ix in index_lists])
        if total
        else np.zeros(0, dtype=np.intp)
    )
    export, shm_fields = SharedColumnExport.build(cache, field_order, perm, bounds)
    shm_set = set(shm_fields)
    list_columns = {
        name: cache.list_column(name) for name in field_order if name not in shm_set
    }
    context = _WorkerContext(
        engine=engine,
        plan=plan,
        query_name=query_name,
        split=0,
        mode="columns",
        export=export,
        list_columns=list_columns,
        field_order=field_order,
        shm_fields=shm_fields,
        perm=perm,
    )
    return context, [len(indices) for indices in index_lists]


def _build_split_columns_context(
    engine, plan, query_name: str, metrics, first_compiled, split: int
) -> Tuple[_WorkerContext, List[int]]:
    """Re-transpose a split plan's prefix outputs into a shared-memory export.

    The parent runs the pre-split prefix exactly as the records path does
    (``_scatter_partitions`` — prefix sinks write, input metrics account),
    but instead of handing each partition a fork-inherited record list, the
    prefix's *output* records are transposed through a fresh
    :class:`SourceColumnCache` and exported once.  Each partition's input
    becomes an ordered segment list: ``["cols", start, stop]`` for a
    contiguous run of export rows entering at the split barrier, and
    ``["recs", entry, records]`` for rows that enter mid-pipeline
    (join/union right sides), which keep the fork-inherited record path.
    """
    from repro.runtime.storage import SourceColumnCache

    np = get_numpy()
    partitions = engine._scatter_partitions(plan, metrics, first_compiled, split)
    prefix_records: List[Record] = []
    segments: List[List[List[Any]]] = []
    for pairs in partitions:
        part_segments: List[List[Any]] = []
        for entry_index, record in pairs:
            if entry_index == split:
                position = len(prefix_records)
                last = part_segments[-1] if part_segments else None
                if last is not None and last[0] == "cols" and last[2] == position:
                    last[2] = position + 1
                else:
                    part_segments.append(["cols", position, position + 1])
                prefix_records.append(record)
            else:
                last = part_segments[-1] if part_segments else None
                if last is not None and last[0] == "recs" and last[1] == entry_index:
                    last[2].append(record)
                else:
                    part_segments.append(["recs", entry_index, [record]])
        segments.append(part_segments)

    field_order = _discover_field_order(prefix_records)
    cache = SourceColumnCache(prefix_records)
    total = len(prefix_records)
    perm = np.arange(total, dtype=np.intp)
    export, shm_fields = SharedColumnExport.build(cache, field_order, perm, [0, total])
    shm_set = set(shm_fields)
    list_columns = {
        name: cache.list_column(name) for name in field_order if name not in shm_set
    }
    context = _WorkerContext(
        engine=engine,
        plan=plan,
        query_name=query_name,
        split=split,
        mode="split-columns",
        export=export,
        list_columns=list_columns,
        field_order=field_order,
        shm_fields=shm_fields,
        perm=None,
        segments=segments,
    )
    return context, [len(pairs) for pairs in partitions]


def merge_worker_payloads(engine, plan, metrics, payloads, sinks, operators, split, num_partitions):
    """Merge worker result payloads into one :class:`QueryResult`.

    The tail of every process-partitioned execution — stable event-time
    output merge, per-operator metrics merge, ordered sink drain,
    adaptivity roll-up — shared by the per-execution pool and the
    persistent :class:`~repro.runtime.pool.WorkerPool`.
    """
    engine.last_worker_pids = sorted({payload["pid"] for payload in payloads})
    collected = list(
        heapq.merge(
            *(payload["records"] for payload in payloads),
            key=lambda record: record.timestamp,
        )
    )
    for payload in payloads:
        for label, count in payload["operator_events"].items():
            metrics.record_operator(label, count)
        for label, seconds in payload["operator_seconds"].items():
            metrics.record_operator_time(label, seconds)
    if sinks:
        engine._drain_sink_buffers(sinks, [payload["sinks"] for payload in payloads])
    metrics.stop()
    prefix_stats = [adaptivity_stats_of(operators)] if split else []
    metrics.record_adaptivity(
        merge_adaptivity_stats(
            *prefix_stats, *(payload["adaptivity"] for payload in payloads)
        )
    )
    return engine._finalize(collected, sinks, metrics, plan, partitions=num_partitions)


def _flush_inherited_buffers(sinks) -> None:
    """Flush parent-side buffered writers before forking.

    A forked child inherits copies of any unflushed stdio/sink buffers and
    flushes them again at exit — the classic fork+stdio double-write.  An
    explicit parent-side flush empties the buffers the children will copy.
    """
    for stream in (sys.stdout, sys.stderr):
        try:
            stream.flush()
        except Exception:
            pass
    for sink in sinks:
        handle = getattr(sink, "_handle", None)
        if handle is not None:
            try:
                handle.flush()
            except Exception:
                pass


def execute_process_partitioned(engine, plan, query_name: str, first_compiled, split: int):
    """Run a partitioned plan on a fork-started process pool.

    Mirrors the thread path end to end — scatter, N workers, stable
    event-time output merge, metrics merge, ordered sink drain — but each
    partition owns a whole interpreter.  The pool (and, in columns mode,
    the shared-memory block) is per-execution and torn down in ``finally``.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    global _WORKER_CONTEXT

    num_partitions = engine.num_partitions
    metrics = MetricsCollector(query_name, profile=engine.profile, bus=engine.metric_bus)
    operators, sinks, entry_points = first_compiled
    bus = metrics.bus
    if bus is not None:
        # worker operator state is invisible across the process boundary, so
        # only parent-side gauges are live in process mode
        bus.set_gauge("batch_size", lambda: engine.batch_size)
    metrics.start()

    context: Optional[_WorkerContext] = None
    try:
        context, partition_rows = build_worker_context(
            engine, plan, query_name, metrics, first_compiled, split
        )
        if bus is not None:
            bus.observe_partition_rows(partition_rows)
        _flush_inherited_buffers(sinks)
        _WORKER_CONTEXT = context
        mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=num_partitions, mp_context=mp_context) as pool:
            payloads = list(pool.map(_run_partition_worker, range(num_partitions)))
    except BaseException:
        abort_execution(metrics, sinks)
        raise
    finally:
        if context is not None:
            engine.last_parallel_mode = context.mode
        _WORKER_CONTEXT = None
        if context is not None and context.export is not None:
            context.export.close()

    return merge_worker_payloads(
        engine, plan, metrics, payloads, sinks, operators, split, num_partitions
    )


def build_worker_context(
    engine, plan, query_name: str, metrics, first_compiled, split: int
) -> Tuple[_WorkerContext, List[int]]:
    """Pick and build the richest context the plan qualifies for.

    ``columns`` for linear numpy replay plans, ``split-columns`` for
    map-derived keys on numpy, fork-inherited ``records`` otherwise.
    Returns the context plus per-partition input row counts.
    """
    _, _, entry_points = first_compiled
    source = plan.source_node.source
    use_columns = (
        split == 0
        and not entry_points
        and hasattr(source, "records_list")
        and not engine.adaptive_batch
        and get_numpy() is not None
    )
    if use_columns:
        return _build_columns_context(engine, plan, query_name, metrics)
    if split > 0 and not engine.adaptive_batch and get_numpy() is not None:
        return _build_split_columns_context(
            engine, plan, query_name, metrics, first_compiled, split
        )
    partitions = engine._scatter_partitions(plan, metrics, first_compiled, split)
    context = _WorkerContext(
        engine=engine,
        plan=plan,
        query_name=query_name,
        split=split,
        mode="records",
        partitions=partitions,
    )
    return context, [len(p) for p in partitions]
