"""Process-pool partition execution over shared-memory columns.

The thread-pool scheduler in :mod:`repro.runtime.engine` is GIL-bound:
partitioned speedups cap out well below core count because the partitions
time-slice one interpreter.  This module provides the
``parallelism="process"`` path — the same hash-partitioned plan layout, but
each partition runs in a **forked worker process** with its own interpreter
and GIL.

Compiled pipelines hold closures (compiled column expressions, UDF lambdas,
zone-index captures), so they are deliberately never pickled.  Instead the
parent stashes everything a worker needs in a module-global
:data:`_WORKER_CONTEXT` *before* creating the pool; the ``fork`` start
method makes the children inherit it, and each pool task is just a partition
index.  Workers rebuild their pipeline from the logical plan
(``engine.compile(plan)`` — cheap relative to a partition's work) and only
the **results** cross process boundaries: output records, per-sink buffers
and a metrics payload (operator counters/times, adaptivity stats) that the
parent merges into the regular :class:`MetricsReport`.

Input rows travel two ways:

* **columns mode** — linear replay plans on the numpy backend (the Q1/Q8
  shape).  The parent exports the :class:`SourceColumnCache`'s typed
  columns once into a single ``multiprocessing.shared_memory`` block,
  permuted so each partition's rows form one contiguous region; workers map
  zero-copy ``ndarray`` views over the block and build column-backed
  batches from slices.  Object-dtype and MISSING-holed columns (strings,
  heterogeneous payloads) don't have a flat native representation; they are
  served from the fork-inherited cache lists by gathered index.
* **records mode** — everything else (binary plans, map-derived partition
  keys, the pure-python backend, non-replay sources).  The parent scatters
  ``(entry, record)`` pairs exactly like the thread path and the partitions
  are inherited by the forked workers; nothing is pickled on the way in.

Shared-memory lifecycle: the block is created, written and **unlinked by
the parent only**, inside ``try/finally``, so a crashing worker (or a
raising operator) cannot leak ``/dev/shm`` segments.  Forked children use
the inherited mapping and never attach by name, which also sidesteps the
resource-tracker double-unlink wart on attach-by-name openers.

Where ``fork`` is unavailable (Windows/macOS-spawn), the engine falls back
to the thread pool — same results, intra-process parallelism only.
"""

from __future__ import annotations

import heapq
import os
import struct
import sys
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.batch import MISSING, RecordBatch
from repro.runtime.columns import get_numpy
from repro.runtime.operators import build_batch_pipeline, swap_buffering_sinks
from repro.streaming.engine import abort_execution
from repro.streaming.metrics import (
    MetricsCollector,
    adaptivity_stats_of,
    merge_adaptivity_stats,
)
from repro.streaming.record import Record


# -- stable partition hashing ------------------------------------------------------


_NONE_HASH = 0x9E3779B9


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent partition hash.

    The builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so two
    runs — or a parent and its spawn-started workers — would disagree on
    partition assignment.  This hash is pure arithmetic/CRC32 and therefore
    reproducible everywhere, while preserving the equality semantics
    partitioning relies on: values that compare equal must co-hash, so
    ``True``/``1``/``1.0`` (one dict key in a record) land in the same
    partition, exactly like ``hash()``.
    """
    if value is None:
        return _NONE_HASH
    if isinstance(value, bool):
        value = int(value)
    elif isinstance(value, float):
        if value.is_integer():
            value = int(value)
        else:
            return zlib.crc32(struct.pack("<d", value))
    if isinstance(value, int):
        return value & 0x7FFFFFFFFFFFFFFF
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        acc = 0x811C9DC5
        for item in value:
            acc = ((acc ^ stable_hash(item)) * 0x01000193) & 0xFFFFFFFF
        return acc
    return zlib.crc32(repr(value).encode("utf-8"))


def process_pool_available() -> bool:
    """Whether fork-based worker processes can run on this platform.

    The design requires ``fork``: workers inherit the compiled context
    (closures and all) instead of unpickling it, which ``spawn`` cannot do.
    """
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# -- shared-memory column export ---------------------------------------------------


class SharedColumnExport:
    """One shared-memory block holding the partition-permuted typed columns.

    Layout: for each exported field, the full column gathered by ``perm``
    (the concatenation of the per-partition row-index lists) so that
    partition ``i`` owns the contiguous region ``bounds[i]:bounds[i+1]`` of
    every column; the permuted ``float64`` timestamp column sits last.
    Workers reconstruct zero-copy views from ``specs`` —
    ``(field, dtype_str, byte_offset)`` triples — over the inherited
    mapping.
    """

    __slots__ = ("shm", "specs", "ts_offset", "bounds", "length")

    def __init__(self, shm, specs, ts_offset, bounds, length) -> None:
        self.shm = shm
        self.specs = specs
        self.ts_offset = ts_offset
        self.bounds = bounds
        self.length = length

    @classmethod
    def build(
        cls, cache, field_order: Sequence[str], perm, bounds: List[int]
    ) -> Tuple["SharedColumnExport", List[str]]:
        """Export every native-dtype column of ``cache`` permuted by ``perm``.

        Only homogeneous ``bool``/``int64``/``float64`` columns have a flat
        byte representation (``typed_array`` returns object arrays for
        anything else — those stay with the fork-inherited list columns).
        Returns the export plus the names that made it into the block.
        """
        from multiprocessing import shared_memory

        np = get_numpy()
        native: List[Tuple[str, Any]] = []
        for name in field_order:
            array = cache.array_column(name)
            if array is not None and array.dtype.kind in "bif":
                native.append((name, array))
        length = len(perm)
        total = sum(array.dtype.itemsize for _, array in native) * length
        total += 8 * length  # float64 timestamps
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        specs: List[Tuple[str, str, int]] = []
        offset = 0
        try:
            for name, array in native:
                gathered = array[perm]
                view = np.ndarray(gathered.shape, dtype=gathered.dtype, buffer=shm.buf, offset=offset)
                view[:] = gathered
                specs.append((name, gathered.dtype.str, offset))
                offset += gathered.nbytes
                # writer views must not outlive this scope: close() raises
                # BufferError while exports of shm.buf are alive
                del view
            ts = cache.timestamps_array()[perm]
            view = np.ndarray(ts.shape, dtype=np.float64, buffer=shm.buf, offset=offset)
            view[:] = ts
            del view
        except BaseException:
            cls._release(shm)
            raise
        return cls(shm, specs, offset, bounds, length), [name for name, _ in native]

    def attach(self) -> Tuple[Dict[str, Any], Any]:
        """Full-length zero-copy views over the block (worker side)."""
        np = get_numpy()
        arrays = {
            name: np.ndarray((self.length,), dtype=np.dtype(dtype), buffer=self.shm.buf, offset=offset)
            for name, dtype, offset in self.specs
        }
        timestamps = np.ndarray(
            (self.length,), dtype=np.float64, buffer=self.shm.buf, offset=self.ts_offset
        )
        return arrays, timestamps

    @staticmethod
    def _release(shm) -> None:
        # unlink before close: even if close() trips on a live view export,
        # the segment is already gone from /dev/shm
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        try:
            shm.close()
        except BufferError:
            pass

    def close(self) -> None:
        """Unlink + unmap (parent side, ``finally``-driven)."""
        self._release(self.shm)


# -- the fork-inherited worker context ---------------------------------------------


_WORKER_CONTEXT: Optional["_WorkerContext"] = None


class _WorkerContext:
    """Everything a forked partition worker needs, inherited — never pickled."""

    __slots__ = (
        "engine",
        "plan",
        "query_name",
        "split",
        "mode",
        "partitions",
        "export",
        "list_columns",
        "field_order",
        "shm_fields",
        "perm",
    )

    def __init__(
        self,
        engine,
        plan,
        query_name: str,
        split: int,
        mode: str,
        partitions: Optional[List[List[Tuple[int, Record]]]] = None,
        export: Optional[SharedColumnExport] = None,
        list_columns: Optional[Dict[str, Tuple[List[Any], bool]]] = None,
        field_order: Optional[List[str]] = None,
        shm_fields: Optional[Sequence[str]] = None,
        perm=None,
    ) -> None:
        self.engine = engine
        self.plan = plan
        self.query_name = query_name
        self.split = split
        self.mode = mode
        self.partitions = partitions
        self.export = export
        self.list_columns = list_columns or {}
        self.field_order = field_order or []
        self.shm_fields = frozenset(shm_fields or ())
        self.perm = perm

    def run(self, index: int) -> Dict[str, Any]:
        engine = self.engine
        operators, _, entries = engine.compile(self.plan)
        operators, sink_buffers = swap_buffering_sinks(operators)
        barriers = set(entries.values())
        if self.split:
            barriers.add(self.split)
        stages = build_batch_pipeline(operators, barriers, fuse=engine.fuse)
        local = MetricsCollector(self.query_name, profile=engine.profile)
        out: List[Record] = []
        if self.mode == "columns":
            self._run_columns(index, stages, local, out)
        else:
            for entry_index, records in engine._chunk_runs(self.partitions[index]):
                batch = engine._run_through(
                    stages, RecordBatch.from_records(records), entry_index, local
                )
                if batch is not None and len(batch):
                    out.extend(batch.to_records())
        engine._flush_stages(stages, local, out)
        return {
            "records": out,
            "sinks": sink_buffers,
            "operator_events": local.operator_events,
            "operator_seconds": local.operator_seconds,
            "adaptivity": adaptivity_stats_of(operators),
            "pid": os.getpid(),
        }

    def _run_columns(self, index: int, stages, local, out: List[Record]) -> None:
        """Drive the partition's contiguous shared-memory region batch-wise.

        Native columns become zero-copy view slices; list-backed columns are
        gathered from the inherited full columns by source row index, with
        the same conservative MISSING marking as ``SourceBatch`` (``column``
        self-heals markers for hole-free slices).
        """
        engine = self.engine
        shm_arrays, shm_ts = self.export.attach()
        start, stop = self.export.bounds[index], self.export.bounds[index + 1]
        perm = self.perm
        field_order = self.field_order
        shm_fields = self.shm_fields
        list_columns = self.list_columns
        batch_size = max(1, engine.batch_size)
        for begin in range(start, stop, batch_size):
            end = min(begin + batch_size, stop)
            batch = RecordBatch._raw()
            for name in field_order:
                if name in shm_fields:
                    batch._arrays[name] = shm_arrays[name][begin:end]
                else:
                    full, has_missing = list_columns[name]
                    indices = perm[begin:end]
                    batch._columns[name] = [full[i] for i in indices]
                    if has_missing:
                        batch._missing.add(name)
            ts_view = shm_ts[begin:end]
            batch._field_order = list(field_order)
            batch._timestamps = ts_view.tolist()
            batch._ts_array = ts_view
            batch._length = end - begin
            batch = engine._run_through(stages, batch, 0, local)
            if batch is not None and len(batch):
                out.extend(batch.to_records())


def _run_partition_worker(index: int) -> Dict[str, Any]:
    """Pool task: run one partition against the fork-inherited context."""
    context = _WORKER_CONTEXT
    if context is None:
        raise RuntimeError(
            "no process-partition context: workers must be forked from the "
            "executing parent (spawn cannot inherit compiled pipelines)"
        )
    return context.run(index)


# -- parent-side orchestration -----------------------------------------------------


def _build_columns_context(engine, plan, query_name: str, metrics) -> Tuple[_WorkerContext, List[int]]:
    """Scatter a replay source's cached columns into a shared-memory export.

    Partition assignment hashes the cached partition-key column directly —
    no per-record dict probing, no row materialization.  Input accounting
    (``events_in``/``bytes_in``) reproduces the single-partition batch path
    exactly: byte estimates come from the same ``SourceBatch`` estimator
    over the same slicing.
    """
    from repro.runtime.storage import SourceBatch, SourceColumnCache

    np = get_numpy()
    source = plan.source_node.source
    cache = SourceColumnCache.of(source)
    records = cache.records
    total = len(records)
    measure_bytes = engine.measure_bytes
    step = max(1, engine.batch_size)
    for start in range(0, total, step):
        stop = min(start + step, total)
        if measure_bytes:
            chunk = SourceBatch.for_slice(cache, records[start:stop], start, stop)
            metrics.record_in(stop - start, chunk.estimate_bytes())
        else:
            metrics.record_in(stop - start, 0)

    field_order: List[str] = []
    seen = set()
    for record in records:
        for name in record.data:
            if name not in seen:
                seen.add(name)
                field_order.append(name)

    num_partitions = engine.num_partitions
    index_lists: List[List[int]] = [[] for _ in range(num_partitions)]
    key_column, _ = cache.list_column(engine.partition_key)
    if key_column is None:
        index_lists[_NONE_HASH % num_partitions] = list(range(total))
    else:
        for i, key in enumerate(key_column):
            if key is MISSING:
                key = None
            index_lists[stable_hash(key) % num_partitions].append(i)
    bounds = [0]
    for indices in index_lists:
        bounds.append(bounds[-1] + len(indices))
    perm = (
        np.concatenate([np.asarray(ix, dtype=np.intp) for ix in index_lists])
        if total
        else np.zeros(0, dtype=np.intp)
    )
    export, shm_fields = SharedColumnExport.build(cache, field_order, perm, bounds)
    shm_set = set(shm_fields)
    list_columns = {
        name: cache.list_column(name) for name in field_order if name not in shm_set
    }
    context = _WorkerContext(
        engine=engine,
        plan=plan,
        query_name=query_name,
        split=0,
        mode="columns",
        export=export,
        list_columns=list_columns,
        field_order=field_order,
        shm_fields=shm_fields,
        perm=perm,
    )
    return context, [len(indices) for indices in index_lists]


def _flush_inherited_buffers(sinks) -> None:
    """Flush parent-side buffered writers before forking.

    A forked child inherits copies of any unflushed stdio/sink buffers and
    flushes them again at exit — the classic fork+stdio double-write.  An
    explicit parent-side flush empties the buffers the children will copy.
    """
    for stream in (sys.stdout, sys.stderr):
        try:
            stream.flush()
        except Exception:
            pass
    for sink in sinks:
        handle = getattr(sink, "_handle", None)
        if handle is not None:
            try:
                handle.flush()
            except Exception:
                pass


def execute_process_partitioned(engine, plan, query_name: str, first_compiled, split: int):
    """Run a partitioned plan on a fork-started process pool.

    Mirrors the thread path end to end — scatter, N workers, stable
    event-time output merge, metrics merge, ordered sink drain — but each
    partition owns a whole interpreter.  The pool (and, in columns mode,
    the shared-memory block) is per-execution and torn down in ``finally``.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    global _WORKER_CONTEXT

    num_partitions = engine.num_partitions
    metrics = MetricsCollector(query_name, profile=engine.profile, bus=engine.metric_bus)
    operators, sinks, entry_points = first_compiled
    bus = metrics.bus
    if bus is not None:
        # worker operator state is invisible across the process boundary, so
        # only parent-side gauges are live in process mode
        bus.set_gauge("batch_size", lambda: engine.batch_size)
    metrics.start()

    source = plan.source_node.source
    use_columns = (
        split == 0
        and not entry_points
        and hasattr(source, "records_list")
        and not engine.adaptive_batch
        and get_numpy() is not None
    )
    context: Optional[_WorkerContext] = None
    try:
        if use_columns:
            context, partition_rows = _build_columns_context(engine, plan, query_name, metrics)
        else:
            partitions = engine._scatter_partitions(plan, metrics, first_compiled, split)
            partition_rows = [len(p) for p in partitions]
            context = _WorkerContext(
                engine=engine,
                plan=plan,
                query_name=query_name,
                split=split,
                mode="records",
                partitions=partitions,
            )
        if bus is not None:
            bus.observe_partition_rows(partition_rows)
        _flush_inherited_buffers(sinks)
        _WORKER_CONTEXT = context
        mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=num_partitions, mp_context=mp_context) as pool:
            payloads = list(pool.map(_run_partition_worker, range(num_partitions)))
    except BaseException:
        abort_execution(metrics, sinks)
        raise
    finally:
        _WORKER_CONTEXT = None
        if context is not None and context.export is not None:
            context.export.close()

    engine.last_worker_pids = sorted({payload["pid"] for payload in payloads})
    collected = list(
        heapq.merge(
            *(payload["records"] for payload in payloads),
            key=lambda record: record.timestamp,
        )
    )
    for payload in payloads:
        for label, count in payload["operator_events"].items():
            metrics.record_operator(label, count)
        for label, seconds in payload["operator_seconds"].items():
            metrics.record_operator_time(label, seconds)
    if sinks:
        engine._drain_sink_buffers(sinks, [payload["sinks"] for payload in payloads])
    metrics.stop()
    prefix_stats = [adaptivity_stats_of(operators)] if split else []
    metrics.record_adaptivity(
        merge_adaptivity_stats(
            *prefix_stats, *(payload["adaptivity"] for payload in payloads)
        )
    )
    return engine._finalize(collected, sinks, metrics, plan, partitions=num_partitions)
