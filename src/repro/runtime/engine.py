"""Vectorized micro-batch execution engine.

:class:`BatchExecutionEngine` compiles the *same* logical plans as the
record-at-a-time :class:`~repro.streaming.engine.StreamExecutionEngine`
(it reuses its compiler, so operator positions, entry points and sinks are
identical), then executes them batch-wise:

* the source stream is chunked into columnar
  :class:`~repro.runtime.batch.RecordBatch` micro-batches;
* stateless stages run vectorized and fused (see
  :mod:`repro.runtime.operators`);
* stateful operators keep record-engine semantics, so the output record
  sequence — and the ``events_in`` / byte metrics — are identical to
  record-at-a-time execution;
* with ``num_partitions > 1`` the stream is hash-partitioned on
  ``partition_key`` (the per-train ``device_id`` by default, via the
  process-stable :func:`~repro.runtime.parallel.stable_hash`) and
  partitions run in parallel, one compiled pipeline each — on a thread
  pool by default, or on a **forked process pool** with
  ``parallelism="process"`` (true multi-core; typed columns travel through
  shared memory, see :mod:`repro.runtime.parallel`).  Partitioning is only
  used when provably record-correct: every operator must declare itself
  stateless or keyed by the partition key
  (:meth:`~repro.streaming.operators.Operator.partition_keys`).  Binary
  plans qualify through the same declarations — a join partitions exactly
  when the stream is split on one of its join keys (both sides are hashed
  identically).  Plans with sinks partition too: each pipeline writes a
  partition-local buffer and the engine drains the buffers into the real
  sinks through the stable event-time merge that also orders the output
  records, so a terminal sink observes exactly ``result.records``.
  A **map-derived** partition key (e.g. Q4's ``cell_id``) no longer
  disqualifies the plan: the stages up to and including the producing
  ``map`` run as a shared single-partition prefix and records are re-hashed
  on the key *after* it, so only the suffix operators need to be keyed by
  the partition key (:meth:`_partition_split` picks the hash position).
  Outputs are re-merged in event-time order — this assumes sources honour
  the :class:`~repro.streaming.source.Source` contract of yielding records
  in event-time order, and equally-timestamped outputs of *different* keys
  may interleave differently than in single-partition mode.
  :attr:`QueryResult.partitions` reports how many partitions actually ran.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.runtime.batch import RecordBatch
from repro.runtime.operators import (
    BatchOperator,
    FusedBatchStage,
    build_batch_pipeline,
    swap_buffering_sinks,
)
from repro.runtime.parallel import stable_hash
from repro.runtime.storage import iter_source_batches
from repro.streaming.engine import QueryResult, StreamExecutionEngine, abort_execution
from repro.streaming.metrics import (
    MetricsCollector,
    adaptivity_stats_of,
    merge_adaptivity_stats,
)
from repro.streaming.plan import (
    FlatMapNode,
    JoinNode,
    LogicalPlan,
    MapNode,
    OperatorNode,
    ProjectNode,
    UnionNode,
)
from repro.streaming.query import Query
from repro.streaming.record import Record, estimate_record_bytes


class BatchExecutionEngine(StreamExecutionEngine):
    """Executes queries in vectorized micro-batches.

    Drop-in replacement for :class:`StreamExecutionEngine`: same queries, same
    :class:`QueryResult`, record-for-record identical output.
    """

    def __init__(
        self,
        batch_size: int = 256,
        measure_bytes: bool = True,
        fuse: bool = True,
        num_partitions: int = 1,
        partition_key: str = "device_id",
        profile: bool = False,
        metric_bus=None,
        adaptive_batch: bool = False,
        parallelism: str = "thread",
        worker_pool=None,
    ) -> None:
        super().__init__(measure_bytes=measure_bytes)
        if batch_size < 1:
            raise PlanError("batch_size must be at least 1")
        if num_partitions < 1:
            raise PlanError("num_partitions must be at least 1")
        if parallelism not in ("thread", "process"):
            raise PlanError(
                f"unknown parallelism {parallelism!r}; expected 'thread' or 'process'"
            )
        if worker_pool is not None and parallelism != "process":
            raise PlanError("worker_pool requires parallelism='process'")
        self.batch_size = int(batch_size)
        self.fuse = bool(fuse)
        self.num_partitions = int(num_partitions)
        self.partition_key = partition_key
        #: ``"thread"`` runs partitions on a thread pool (GIL-bound);
        #: ``"process"`` forks one worker per partition for true multi-core
        #: execution (see :mod:`repro.runtime.parallel`), falling back to the
        #: thread pool where ``fork`` is unavailable.
        self.parallelism = parallelism
        #: The distinct worker PIDs of the last process-partitioned run
        #: (``None`` before any, or when partitioning ran in threads) — an
        #: introspection/testing hook.
        self.last_worker_pids: Optional[List[int]] = None
        #: Input-shipping mode of the last process-partitioned run
        #: (``"columns"`` / ``"split-columns"`` / ``"records"``) — lets tests
        #: assert a plan took the shared-memory path, not just that it ran.
        self.last_parallel_mode: Optional[str] = None
        #: A persistent :class:`~repro.runtime.pool.WorkerPool` to run
        #: process partitions on (fork/shm/compile amortized across
        #: executions); ``None`` keeps the per-execution pool.
        self.worker_pool = worker_pool
        #: Attribute per-operator wall time (``MetricsReport.operator_seconds``)
        #: — one clock pair per stage per batch, so leave off for headline
        #: throughput runs.
        self.profile = bool(profile)
        #: Live-snapshot bus (see :mod:`repro.streaming.metricbus`): per-batch
        #: size/latency observations, per-partition row counts and gauges,
        #: all behind ``if bus is None`` guards on the hot path.
        self.metric_bus = metric_bus
        #: Honour mid-run :meth:`set_batch_size` calls at chunk boundaries
        #: (the ``AdaptiveBatchSizer`` hook); off by default so the static
        #: chunkers stay untouched.
        self.adaptive_batch = bool(adaptive_batch)

    # -- execution ---------------------------------------------------------------------

    def execute(self, query: "Query | LogicalPlan", name: Optional[str] = None) -> QueryResult:
        if isinstance(query, Query):
            plan = query.plan()
            query_name = name or query.name
        else:
            plan = query
            query_name = name or "plan"
        compiled = self.compile(plan)
        if self.num_partitions > 1:
            split = self._partition_split(plan, compiled)
            if split is not None:
                return self._execute_partitioned(plan, query_name, compiled, split)
        return self._execute_single(plan, query_name, compiled)

    def _partition_split(self, plan: LogicalPlan, compiled) -> Optional[int]:
        """The pipeline position at which records may be hashed into
        partitions, or ``None`` when the plan cannot split record-correctly.

        ``0`` is the classic source-borne case: records are hashed before any
        operator runs.  A positive position means the partition key only
        becomes stable mid-pipeline (it is produced by a ``map``): the
        operators before the position run as a shared single-partition
        prefix and records are re-hashed on the produced key after it — this
        is what lets Q4 (whose join key ``cell_id`` is map-derived)
        partition.  Sinks do not disqualify a plan: partitioned pipelines
        buffer sink writes and the engine replays them in restored
        event-time order (see :meth:`_drain_sink_buffers`).  Qualification
        requires every operator *from the hash position
        on* either stateless or keyed by the partition key (see
        :meth:`~repro.streaming.operators.Operator.partition_keys`); prefix
        operators run single-partition and need no declaration.  Binary
        plans qualify through the same declarations: a join declares its join
        keys, so a join plan partitions exactly when the stream is split on a
        join key (both sides hash identically and matching pairs land in the
        same partition); a union contributes no operator and only merges
        streams.  Right-hand sides are materialized once and split by the
        same hash (see :meth:`_execute_partitioned`).
        """
        operators, _, _ = compiled
        split = self._key_stable_from(plan)
        if split is None:
            return None
        for position in range(split, len(operators)):
            keys = operators[position].partition_keys()
            if keys is None:
                return None
            if keys and self.partition_key not in keys:
                return None
        return split

    def _key_stable_from(self, plan: LogicalPlan) -> Optional[int]:
        """The earliest pipeline position from which every record keeps its
        partition-key value, or ``None`` when no such position exists.

        The key is stable from the source (position 0) unless rewritten.  A
        ``map`` that produces/overwrites the key moves the stable position to
        just after itself (re-hash there); a ``project`` that drops it or a
        ``flat_map`` (whose output records are arbitrary) invalidates it
        until a later ``map`` re-produces it.  Plugin operators can attach
        arbitrary fields; they are trusted not to rewrite the partition key
        in linear plans (the NebulaMEOS operators only annotate), but
        conservatively disqualify binary plans when they run after the hash
        position, where both sides must co-hash.  A binary node whose records
        enter at or after the hash position needs a right-hand side that
        carries the key stably (right-side records are hashed on their own
        key value as they arrive); a binary node wholly inside the prefix
        runs single-partition and needs nothing.
        """
        key = self.partition_key
        split: Optional[int] = 0
        position = 0
        binaries: List[Tuple[int, LogicalPlan]] = []
        plugin_positions: List[int] = []
        for node in plan.nodes[1:]:
            if isinstance(node, MapNode):
                if key in node.output_fields():
                    split = position + 1
            elif isinstance(node, ProjectNode):
                if key not in node.fields:
                    split = None
            elif isinstance(node, FlatMapNode):
                split = None
            elif isinstance(node, OperatorNode):
                plugin_positions.append(position)
            elif isinstance(node, (JoinNode, UnionNode)):
                binaries.append((position, node.right_plan))
            if not isinstance(node, UnionNode):
                position += 1
        if split is None:
            return None
        if binaries:
            for entry, right_plan in binaries:
                if entry >= split and not self._partition_key_is_stable(right_plan, True):
                    return None
            if any(p >= split for p in plugin_positions):
                return None
        return split

    def _partition_key_is_stable(self, plan: LogicalPlan, strict_plugins: bool) -> bool:
        """Whether every record keeps its source-time partition-key value.

        Used for the right-hand plans of binary nodes, whose records are
        hashed on the key value they arrive with: a ``map`` that
        produces/overwrites the key, a ``project`` that drops it, or a
        ``flat_map`` (arbitrary output records) breaks that.  Plugin
        operators conservatively disqualify under ``strict_plugins`` (both
        sides must co-hash and right-hand records may lack the field).
        """
        for node in plan.nodes:
            if isinstance(node, MapNode) and self.partition_key in node.output_fields():
                return False
            if isinstance(node, ProjectNode) and self.partition_key not in node.fields:
                return False
            if isinstance(node, FlatMapNode):
                return False
            if strict_plugins and isinstance(node, OperatorNode):
                return False
            if isinstance(node, (JoinNode, UnionNode)):
                if not self._partition_key_is_stable(node.right_plan, True):
                    return False
        return True

    def _execute_single(self, plan: LogicalPlan, query_name: str, compiled) -> QueryResult:
        metrics = MetricsCollector(query_name, profile=self.profile, bus=self.metric_bus)
        operators, sinks, entry_points = compiled
        stages = build_batch_pipeline(operators, set(entry_points.values()), fuse=self.fuse)
        bus = metrics.bus
        if bus is not None:
            self._register_gauges(bus, stages, operators)

        collected: List[Record] = []
        metrics.start()
        try:
            self._run_single(plan, stages, entry_points, metrics, bus, collected)
        except BaseException:
            abort_execution(metrics, sinks)
            raise
        metrics.stop()
        metrics.record_adaptivity(adaptivity_stats_of(operators))
        return self._finalize(collected, sinks, metrics, plan)

    def _run_single(self, plan, stages, entry_points, metrics, bus, collected) -> None:
        if not entry_points:
            # Linear plan: chunk the source directly and count whole batches —
            # no per-record counting generator, no entry-index bookkeeping.
            # Replay sources additionally get cache-backed columnar batches:
            # touched columns are transposed once per source and served as
            # slices/views (see repro.runtime.storage).
            source = plan.source_node.source
            batches = self._source_batches(source)
            measure_bytes = self.measure_bytes
            if bus is None:
                for batch in batches:
                    metrics.record_in(len(batch), batch.estimate_bytes() if measure_bytes else 0)
                    batch = self._run_through(stages, batch, 0, metrics)
                    if batch is not None and len(batch):
                        collected.extend(batch.to_records())
            else:
                # instrumented twin of the loop above: batch-size distribution
                # plus one whole-batch latency observation per batch (every
                # row in the batch experienced that processing time)
                from time import perf_counter

                for batch in batches:
                    rows = len(batch)
                    bus.observe_batch_size(rows)
                    metrics.record_in(rows, batch.estimate_bytes() if measure_bytes else 0)
                    started = perf_counter()
                    batch = self._run_through(stages, batch, 0, metrics)
                    bus.observe_latency(perf_counter() - started, rows)
                    if batch is not None and len(batch):
                        collected.extend(batch.to_records())
        else:
            input_stream = self._input_stream(plan, metrics, entry_points)
            for entry_index, records in self._entry_chunks(input_stream):
                batch = self._run_through(
                    stages, RecordBatch.from_records(records), entry_index, metrics
                )
                if batch is not None and len(batch):
                    collected.extend(batch.to_records())
        self._flush_stages(stages, metrics, collected)

    def _register_gauges(self, bus, stages, operators) -> None:
        """Point-in-time gauges, evaluated only when a snapshot is built."""
        bus.set_gauge(
            "buffer_depth", lambda: sum(stage.buffered_depth() for stage in stages)
        )
        bus.set_gauge("adaptivity", lambda: adaptivity_stats_of(operators))
        bus.set_gauge("batch_size", lambda: self.batch_size)

    def _source_batches(self, source) -> "Iterable[RecordBatch]":
        """Chunk the source, honouring mid-run resizes under ``adaptive_batch``."""
        if hasattr(source, "records_list"):
            if not self.adaptive_batch:
                return iter_source_batches(source, self.batch_size)
            return self._adaptive_source_batches(source)
        if not self.adaptive_batch:
            batch_size = self.batch_size

            def _chunked(iterator=iter(source)) -> "Iterator[RecordBatch]":
                while True:
                    records = list(islice(iterator, batch_size))
                    if not records:
                        return
                    yield RecordBatch.from_records(records)

            return _chunked()

        def _chunked_adaptive(iterator=iter(source)) -> "Iterator[RecordBatch]":
            while True:
                records = list(islice(iterator, max(1, self.batch_size)))
                if not records:
                    return
                yield RecordBatch.from_records(records)

        return _chunked_adaptive()

    def _adaptive_source_batches(self, source) -> "Iterator[RecordBatch]":
        """Cache-backed source slices re-reading ``batch_size`` per chunk."""
        from repro.runtime.storage import SourceBatch, SourceColumnCache

        cache = SourceColumnCache.of(source)
        records = cache.records
        total = len(records)
        start = 0
        while start < total:
            stop = min(start + max(1, self.batch_size), total)
            yield SourceBatch.for_slice(cache, records[start:stop], start, stop)
            start = stop

    def _finalize(
        self,
        collected: List[Record],
        sinks,
        metrics: MetricsCollector,
        plan: LogicalPlan,
        partitions: int = 1,
    ) -> QueryResult:
        for sink in sinks:
            sink.close()
        if self.measure_bytes:
            for record in collected:
                metrics.record_out(0, estimate_record_bytes(record))
        metrics.events_out = len(collected)
        return QueryResult(collected, metrics.report(), plan, partitions=partitions)

    def _materialize_side(self, right_plan: LogicalPlan, metrics: MetricsCollector):
        """Run a binary node's right-hand plan into a buffer, single-partition.

        Partitioning the side would be wasted work: its output is re-hashed
        into the outer partitions (or merged into the single stream) right
        after, so the pool, per-partition buffers and heap-merge buy nothing.
        """
        result = self._execute_single(right_plan, "join-side", self.compile(right_plan))
        metrics.record_in(result.metrics.events_in, result.metrics.bytes_in)
        return result.records

    # -- batching helpers -----------------------------------------------------------

    def _entry_chunks(
        self, input_stream: Iterator[Record]
    ) -> Iterator[Tuple[int, List[Record]]]:
        """Chunk the (merged) input stream into micro-batches.

        Records are grouped into runs sharing the same pipeline entry point
        (binary-node right-hand sides enter mid-pipeline), capped at
        ``batch_size`` rows, so every batch enters the pipeline at one place.
        """
        return self._chunk_runs(
            (record.data.pop("_entry_index", 0), record) for record in input_stream
        )

    def _chunk_runs(
        self, pairs: "Iterable[Tuple[int, Record]]"
    ) -> Iterator[Tuple[int, List[Record]]]:
        """Chunk ``(entry_point, record)`` pairs into same-entry micro-batches."""
        adaptive = self.adaptive_batch
        batch_size = self.batch_size
        current_entry = 0
        buffer: List[Record] = []
        for entry, record in pairs:
            if adaptive:
                batch_size = self.batch_size
            if buffer and (entry != current_entry or len(buffer) >= batch_size):
                yield current_entry, buffer
                buffer = []
            current_entry = entry
            buffer.append(record)
        if buffer:
            yield current_entry, buffer

    @staticmethod
    def _run_through(
        stages: Sequence[BatchOperator],
        batch: RecordBatch,
        entry_index: int,
        metrics: MetricsCollector,
    ) -> Optional[RecordBatch]:
        if metrics.profile:
            return BatchExecutionEngine._run_through_profiled(
                stages, batch, entry_index, metrics
            )
        for stage in stages:
            if stage.end_position <= entry_index:
                continue
            if not len(batch):
                return None
            batch = stage.process_batch(batch, metrics)
        return batch

    @staticmethod
    def _run_through_profiled(
        stages: Sequence[BatchOperator],
        batch: RecordBatch,
        entry_index: int,
        metrics: MetricsCollector,
    ) -> Optional[RecordBatch]:
        """`_run_through` with per-stage wall-time attribution.

        Fused stages time their member operators themselves (so labels match
        ``operator_events``); every other stage is timed here.
        """
        from time import perf_counter

        for stage in stages:
            if stage.end_position <= entry_index:
                continue
            if not len(batch):
                return None
            if isinstance(stage, FusedBatchStage):
                batch = stage.process_batch(batch, metrics)
            else:
                started = perf_counter()
                batch = stage.process_batch(batch, metrics)
                metrics.record_operator_time(stage.label, perf_counter() - started)
        return batch

    @staticmethod
    def _flush_stages(
        stages: Sequence[BatchOperator],
        metrics: MetricsCollector,
        collected: List[Record],
    ) -> None:
        """Flush stateful stages upstream-to-downstream, like the record engine."""
        profile = metrics.profile
        if profile:
            from time import perf_counter
        for position, stage in enumerate(stages):
            if profile:
                started = perf_counter()
                batch = stage.flush(metrics)
                if not isinstance(stage, FusedBatchStage):
                    metrics.record_operator_time(stage.label, perf_counter() - started)
            else:
                batch = stage.flush(metrics)
            if not len(batch):
                continue
            for later in stages[position + 1 :]:
                if not len(batch):
                    break
                if profile and not isinstance(later, FusedBatchStage):
                    started = perf_counter()
                    batch = later.process_batch(batch, metrics)
                    metrics.record_operator_time(later.label, perf_counter() - started)
                else:
                    batch = later.process_batch(batch, metrics)
            if len(batch):
                collected.extend(batch.to_records())

    # -- partition-parallel execution ----------------------------------------------------

    def _execute_partitioned(
        self, plan: LogicalPlan, query_name: str, first_compiled, split: int = 0
    ) -> QueryResult:
        """Hash-partitioned parallel execution.

        The whole (merged) input stream — including the materialized,
        entry-tagged right-hand sides of binary nodes — is split into
        per-partition buffers before the pool starts (peak memory is
        O(stream length), unlike the streaming single-partition path) —
        acceptable for the in-memory scenario replays this engine targets.
        Both sides of a join hash on the same partition key, so matching
        pairs always meet in the same partition.

        With ``split > 0`` the partition key is map-derived: records entering
        before ``split`` first flow through a shared single-partition prefix
        pipeline (the stages ending at or before ``split``) and its *output*
        rows are hashed on the key they now carry, resuming mid-pipeline at
        ``split`` inside their partition; records already entering at or
        after ``split`` (binary right-hand sides) are hashed directly on
        their own key value.  Scatter order is prefix processing order, i.e.
        exactly the single-pipeline processing order, so each partition sees
        the record-engine sequence restricted to its keys.
        """
        if self.parallelism == "process":
            from repro.runtime import parallel

            if parallel.process_pool_available():
                if self.worker_pool is not None:
                    from repro.runtime import pool as worker_pool_module

                    return worker_pool_module.execute_process_pooled(
                        self, plan, query_name, first_compiled, split
                    )
                return parallel.execute_process_partitioned(
                    self, plan, query_name, first_compiled, split
                )
            # no fork on this platform: run the thread pool instead — same
            # results, intra-process parallelism only (documented fallback)
        num_partitions = self.num_partitions
        metrics = MetricsCollector(query_name, profile=self.profile, bus=self.metric_bus)
        if split:
            # fresh pipelines for every partition: the prefix stages keep
            # first_compiled's operator instances for themselves
            compiled = [self.compile(plan) for _ in range(num_partitions)]
        else:
            compiled = [first_compiled] + [
                self.compile(plan) for _ in range(num_partitions - 1)
            ]
        operators, sinks, entry_points = first_compiled
        partition_sink_buffers: List[List[List[Record]]] = []
        if sinks:
            # partition pipelines must not write shared sinks concurrently:
            # swap in buffering twins, drained in order after the pool
            rebuilt = []
            for ops, compiled_sinks, entries in compiled:
                swapped, buffers = swap_buffering_sinks(ops)
                rebuilt.append((swapped, compiled_sinks, entries))
                partition_sink_buffers.append(buffers)
            compiled = rebuilt
        # every distinct pipeline that actually runs: the per-partition ones,
        # plus the shared prefix pipeline when the partition key is
        # map-derived (split > 0, where first_compiled's operators run the
        # prefix stages; with split == 0 and sinks, the unswapped
        # first_compiled never executes and is excluded)
        pipelines = [ops for ops, _, _ in compiled]
        if split:
            pipelines.insert(0, operators)
        bus = metrics.bus
        if bus is not None:
            all_operators = [op for ops in pipelines for op in ops]
            bus.set_gauge(
                "adaptivity",
                lambda: merge_adaptivity_stats(
                    *(adaptivity_stats_of(ops) for ops in pipelines)
                ),
            )
            bus.set_gauge("batch_size", lambda: self.batch_size)
            bus.set_gauge(
                "buffer_depth",
                lambda: sum(operator.buffered_depth() for operator in all_operators),
            )

        metrics.start()
        try:
            partitions = self._scatter_partitions(plan, metrics, first_compiled, split)
        except BaseException:
            abort_execution(metrics, sinks)
            raise
        if bus is not None:
            # the skew view: how many rows each parallel pipeline received
            bus.observe_partition_rows([len(p) for p in partitions])

        def run_partition(index: int) -> Tuple[List[Record], MetricsCollector]:
            operators, _, entries = compiled[index]
            stage_barriers = set(entries.values())
            if split:
                stage_barriers.add(split)
            stages = build_batch_pipeline(operators, stage_barriers, fuse=self.fuse)
            local = MetricsCollector(query_name, profile=self.profile)
            out: List[Record] = []
            for entry_index, records in self._chunk_runs(partitions[index]):
                batch = self._run_through(
                    stages, RecordBatch.from_records(records), entry_index, local
                )
                if batch is not None and len(batch):
                    out.extend(batch.to_records())
            self._flush_stages(stages, local, out)
            return out, local

        try:
            with ThreadPoolExecutor(max_workers=num_partitions) as pool:
                results = list(pool.map(run_partition, range(num_partitions)))
        except BaseException:
            abort_execution(metrics, sinks)
            raise
        # heapq.merge requires each partition's output to be event-time
        # ordered, which holds when the source honours the Source contract
        # (records in event-time order): stateless stages preserve it, and
        # window/CEP emissions are nondecreasing in event time.
        collected = list(
            heapq.merge(*(out for out, _ in results), key=lambda record: record.timestamp)
        )
        for _, local in results:
            for label, count in local.operator_events.items():
                metrics.record_operator(label, count)
            for label, seconds in local.operator_seconds.items():
                metrics.record_operator_time(label, seconds)
        if sinks:
            self._drain_sink_buffers(sinks, partition_sink_buffers)
        metrics.stop()
        metrics.record_adaptivity(
            merge_adaptivity_stats(*(adaptivity_stats_of(ops) for ops in pipelines))
        )
        return self._finalize(collected, sinks, metrics, plan, partitions=num_partitions)

    def _scatter_partitions(
        self, plan: LogicalPlan, metrics: MetricsCollector, first_compiled, split: int
    ) -> List[List[Tuple[int, Record]]]:
        """Hash-split the (merged) input stream into per-partition buffers.

        Shared by the thread and process schedulers.  Assignment uses the
        process-stable :func:`~repro.runtime.parallel.stable_hash`, so the
        same stream lands in the same partitions on every run and in every
        process, regardless of ``PYTHONHASHSEED``.  With ``split > 0`` the
        shared prefix (``first_compiled``'s stages up to ``split``) runs here
        in the parent — including any real sinks it contains — and its
        output rows are hashed on the key they now carry.
        """
        operators, _, entry_points = first_compiled
        num_partitions = self.num_partitions
        partition_key = self.partition_key
        partitions: List[List[Tuple[int, Record]]] = [[] for _ in range(num_partitions)]
        input_stream = self._input_stream(plan, metrics, entry_points)
        if split:
            barriers = set(entry_points.values()) | {split}
            prefix_stages = [
                stage
                for stage in build_batch_pipeline(operators, barriers, fuse=self.fuse)
                if stage.end_position <= split
            ]

            def scatter(entry: int, records: Sequence[Record], keys: Sequence) -> None:
                for record, key in zip(records, keys):
                    partitions[stable_hash(key) % num_partitions].append((entry, record))

            for entry, records in self._entry_chunks(input_stream):
                if entry >= split:
                    batch = RecordBatch.from_records(records)
                    scatter(entry, records, batch.column_or_none(partition_key))
                    continue
                batch = self._run_through(
                    prefix_stages, RecordBatch.from_records(records), entry, metrics
                )
                if batch is not None and len(batch):
                    scatter(split, batch.to_records(), batch.column_or_none(partition_key))
            tail: List[Record] = []
            self._flush_stages(prefix_stages, metrics, tail)
            if tail:
                batch = RecordBatch.from_records(tail)
                scatter(split, tail, batch.column_or_none(partition_key))
        else:
            for record in input_stream:
                entry = record.data.pop("_entry_index", 0)
                slot = stable_hash(record.data.get(partition_key)) % num_partitions
                partitions[slot].append((entry, record))
        return partitions

    @staticmethod
    def _drain_sink_buffers(
        sinks, partition_buffers: List[List[List[Record]]]
    ) -> None:
        """Replay partition-buffered sink writes into the real sinks, in order.

        ``partition_buffers[p][s]`` is partition ``p``'s buffer for sink
        ``s`` (ordered like the compiled sink list).  Each partition's buffer
        is event-time ordered (same argument as the output merge), so the
        stable heap merge restores the exact sequence the single-partition
        run would have written, up to cross-partition timestamp ties — and a
        terminal sink receives exactly ``result.records``, because outputs
        are merged by the identical key and tie-break.
        """
        for sink_index, sink in enumerate(sinks):
            merged = heapq.merge(
                *(buffers[sink_index] for buffers in partition_buffers),
                key=lambda record: record.timestamp,
            )
            for record in merged:
                sink.accept(record)
