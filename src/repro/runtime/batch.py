"""Columnar micro-batches.

A :class:`RecordBatch` holds a fixed number of records with per-field value
arrays (dict-of-lists).  Batches are what flows between the vectorized
operators of the batch execution engine: instead of paying Python-interpreter
overhead per record and per operator, each operator touches whole columns at
a time.

Batches are **lazily** columnar: a batch built from records keeps the row
objects as its backbone and materializes a column the first time an operator
reads that field.  A pipeline that filters on three fields out of twenty only
ever transposes three columns, and converting an untouched batch back to
records is free (the original row objects are returned).  Derived batches
(filtered, mapped) share the unchanged column lists and row pointers —
slicing copies list pointers, never payload values.

Records inside one batch may be heterogeneous (e.g. the merged outputs of a
per-record bridge).  Absent fields are represented by the :data:`MISSING`
sentinel in materialized columns so a batch round-trip neither invents
``None`` fields nor loses the distinction between "absent" and "is None".
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import StreamError
from repro.streaming.record import Record

#: Sentinel marking a field a record did not carry (distinct from ``None``).
MISSING = object()


def _fast_record(data: Dict[str, Any], timestamp: float) -> Record:
    """Build a Record without re-copying the payload (callers own ``data``)."""
    record = Record.__new__(Record)
    record.data = data
    record.timestamp = timestamp
    return record


class RecordBatch:
    """A micro-batch of records with lazily materialized columns."""

    __slots__ = (
        "_rows",
        "_updates",
        "_columns",
        "_missing",
        "_timestamps",
        "_field_order",
        "_length",
        "_derived",
        "_version",
        "_derived_version",
    )

    def __init__(
        self,
        columns: Dict[str, List[Any]],
        timestamps: List[float],
        has_missing: bool = False,
    ) -> None:
        """A purely column-backed batch (``from_records`` builds row-backed ones)."""
        self._rows: Optional[List[Record]] = None
        self._updates: Optional[Dict[str, List[Any]]] = None
        self._columns: Dict[str, List[Any]] = dict(columns)
        self._field_order: Optional[List[str]] = list(columns)
        self._missing = {name for name, values in columns.items() if MISSING in values} if has_missing else set()
        self._timestamps: Optional[List[float]] = list(timestamps)
        self._length = len(timestamps)
        self._derived: Optional[List[Record]] = None
        self._version = 0
        self._derived_version = 0

    @classmethod
    def _raw(cls) -> "RecordBatch":
        batch = cls.__new__(cls)
        batch._rows = None
        batch._updates = None
        batch._columns = {}
        batch._field_order = None
        batch._missing = set()
        batch._timestamps = None
        batch._length = 0
        batch._derived = None
        batch._version = 0
        batch._derived_version = 0
        return batch

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Record]) -> "RecordBatch":
        """Wrap a sequence of records; columns materialize on first access."""
        batch = cls._raw()
        batch._rows = list(records) if not isinstance(records, list) else records
        batch._length = len(batch._rows)
        return batch

    @classmethod
    def empty(cls) -> "RecordBatch":
        return cls({}, [])

    # -- shape ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def timestamps(self) -> List[float]:
        if self._timestamps is None:
            self._timestamps = [r.timestamp for r in self._rows]  # type: ignore[union-attr]
        return self._timestamps

    def field_names(self) -> List[str]:
        """Field names in record order (unions heterogeneous rows)."""
        if self._field_order is not None:
            return list(self._field_order)
        names: List[str] = []
        seen = set()
        for record in self._rows or ():
            for name in record.data:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        for name in self._updates or ():
            if name not in seen:
                seen.add(name)
                names.append(name)
        return names

    # -- column access -------------------------------------------------------------

    def _materialize(self, name: str) -> Optional[List[Any]]:
        """The raw column (may contain MISSING), or None when entirely absent."""
        values = self._columns.get(name)
        if values is not None:
            return values
        rows = self._rows
        if rows is None:
            return None
        try:
            values = [r.data[name] for r in rows]
        except KeyError:
            values = [r.data.get(name, MISSING) for r in rows]
            self._missing.add(name)
        self._columns[name] = values
        return values

    def _missing_error(self, name: str) -> StreamError:
        return StreamError(
            f"record has no field {name!r}; fields: {sorted(self.field_names())}"
        )

    def column(self, name: str) -> List[Any]:
        """The column for ``name``; raises like ``Record.__getitem__`` when any
        row lacks the field."""
        values = self._materialize(name)
        if values is None:
            raise self._missing_error(name)
        if name in self._missing:
            # The missing marker is inherited by derived batches (slice/take/
            # compress) as a hint; rows lacking the field may have been
            # filtered out since, so verify against *this* batch's values —
            # the record engine only raises for rows actually present.
            if MISSING in values:
                raise self._missing_error(name)
            self._missing.discard(name)
        return values

    def column_or_none(self, name: str) -> List[Any]:
        """The column with ``Record.get`` semantics: absent values become None."""
        values = self._materialize(name)
        if values is None:
            return [None] * self._length
        if name in self._missing:
            return [None if v is MISSING else v for v in values]
        return values

    # -- transformations ---------------------------------------------------------------

    def _derive_shape(
        self,
        rows: Optional[List[Record]],
        columns: Dict[str, List[Any]],
        timestamps: Optional[List[float]],
        length: int,
    ) -> "RecordBatch":
        batch = RecordBatch._raw()
        batch._rows = rows
        batch._columns = columns
        batch._missing = set(self._missing)
        batch._timestamps = timestamps
        batch._length = length
        if self._updates is not None:
            batch._updates = {name: columns[name] for name in self._updates}
        if rows is None:
            batch._field_order = self.field_names()
        return batch

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A contiguous sub-batch (lists are sliced, values shared)."""
        norm_start, norm_stop, _ = slice(start, stop).indices(self._length)
        rows = self._rows[norm_start:norm_stop] if self._rows is not None else None
        columns = {
            name: values[norm_start:norm_stop] for name, values in self._columns.items()
        }
        timestamps = (
            self._timestamps[norm_start:norm_stop] if self._timestamps is not None else None
        )
        return self._derive_shape(rows, columns, timestamps, max(0, norm_stop - norm_start))

    def take(self, indices: Sequence[int]) -> "RecordBatch":
        """The rows at the given positions, in the given order."""
        rows = self._rows
        taken_rows = [rows[i] for i in indices] if rows is not None else None
        columns = {
            name: [values[i] for i in indices] for name, values in self._columns.items()
        }
        timestamps = self._timestamps
        taken_ts = [timestamps[i] for i in indices] if timestamps is not None else None
        return self._derive_shape(taken_rows, columns, taken_ts, len(indices))

    def compress(self, mask: Sequence[Any]) -> "RecordBatch":
        """The rows whose mask entry is truthy (vectorized filter kernel)."""
        indices = [i for i, keep in enumerate(mask) if keep]
        if len(indices) == self._length:
            return self
        return self.take(indices)

    def with_columns(
        self, updates: Dict[str, List[Any]], has_missing: bool = False
    ) -> "RecordBatch":
        """Add or overwrite columns, mirroring ``Record.derive`` field order:
        existing fields keep their position, new fields append in update order.

        ``has_missing`` declares that update columns may contain the
        :data:`MISSING` sentinel (a row the operator leaves untouched, e.g. a
        position-less record passing through a plugin kernel); those entries
        are tracked so the row neither gains the field nor turns it into
        ``None`` when materialized.  The flag exists so the hot map path does
        not pay a sentinel scan per column.
        """
        batch = RecordBatch._raw()
        batch._rows = self._rows
        batch._columns = {**self._columns, **updates}
        batch._missing = self._missing - set(updates)
        if has_missing:
            batch._missing.update(
                name for name, values in updates.items() if MISSING in values
            )
        batch._timestamps = self._timestamps
        batch._length = self._length
        if self._rows is not None:
            merged = dict(self._updates) if self._updates else {}
            merged.update(updates)
            batch._updates = merged
        else:
            order = list(self._field_order or ())
            known = set(order)
            order.extend(name for name in updates if name not in known)
            batch._field_order = order
        return batch

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every in-place change (``set_column``).

        Derived-row caches record the version they were materialized at and
        are rebuilt when it moves, so consumers of :meth:`to_records` (the
        record bridges in particular) never observe stale rows — an explicit
        dirty check instead of an implicit reliance on operator ordering.
        """
        return self._version

    def set_column(self, name: str, values: List[Any]) -> None:
        """Write a column **in place**, invalidating cached rows.

        This is the one sanctioned mutation on a batch (everything else
        derives a new batch).  It exists for plugin batch kernels that
        annotate a batch they received rather than deriving a copy; the
        version bump guarantees rows materialized *before* the write are
        re-derived on the next :meth:`to_records` call.  ``values`` may
        contain :data:`MISSING` to mark absent fields and must match the
        batch length.
        """
        if len(values) != self._length:
            raise StreamError(
                f"column {name!r} has {len(values)} values for a batch of {self._length} rows"
            )
        values = list(values)
        self._columns[name] = values
        if MISSING in values:
            self._missing.add(name)
        else:
            self._missing.discard(name)
        if self._rows is not None:
            if self._updates is None:
                self._updates = {}
            self._updates[name] = values
        elif self._field_order is not None and name not in self._field_order:
            self._field_order.append(name)
        self._version += 1

    def project(self, fields: Sequence[str]) -> "RecordBatch":
        """Keep only the listed columns (raises like ``Record.project`` on a
        missing field); the result is purely column-backed."""
        columns = {name: self.column(name) for name in fields}
        batch = RecordBatch._raw()
        batch._columns = columns
        batch._field_order = list(fields)
        batch._timestamps = self.timestamps
        batch._length = self._length
        return batch

    # -- row access ---------------------------------------------------------------------

    def to_records(self) -> List[Record]:
        """The rows as records.

        Free for an untouched row-backed batch (the original records are
        returned); derived rows are materialized once and cached.  The cache
        carries the batch :attr:`version` it was built at, so an in-place
        :meth:`set_column` after materialization transparently triggers a
        re-derive instead of serving stale rows.
        """
        rows = self._rows
        if rows is not None and not self._updates:
            return rows
        if self._derived is not None and self._derived_version != self._version:
            self._derived = None
        if self._derived is None:
            self._derived_version = self._version
            if rows is not None:
                updates = self._updates or {}
                names = list(updates)
                columns = [updates[name] for name in names]
                derived = []
                if self._missing.intersection(names):
                    # update columns may hold MISSING (plugin kernels marking
                    # rows they passed through untouched): such a row keeps its
                    # original payload for that field instead of gaining it
                    for i, record in enumerate(rows):
                        data = dict(record.data)
                        for name, values in zip(names, columns):
                            value = values[i]
                            if value is not MISSING:
                                data[name] = value
                        derived.append(_fast_record(data, record.timestamp))
                elif len(names) == 1:
                    # the common one-assignment map: no per-row zip
                    name, values = names[0], columns[0]
                    for i, record in enumerate(rows):
                        data = dict(record.data)
                        data[name] = values[i]
                        derived.append(_fast_record(data, record.timestamp))
                else:
                    for i, record in enumerate(rows):
                        data = dict(record.data)
                        for name, values in zip(names, columns):
                            data[name] = values[i]
                        derived.append(_fast_record(data, record.timestamp))
                self._derived = derived
            else:
                names = self.field_names()
                columns = [self._columns[name] for name in names]
                timestamps = self.timestamps
                if self._missing:
                    derived = []
                    for i, timestamp in enumerate(timestamps):
                        data = {}
                        for name, values in zip(names, columns):
                            value = values[i]
                            if value is not MISSING:
                                data[name] = value
                        derived.append(_fast_record(data, timestamp))
                    self._derived = derived
                else:
                    self._derived = [
                        _fast_record(dict(zip(names, row)), timestamp)
                        for row, timestamp in zip(
                            zip(*columns) if columns else ([()] * len(timestamps)),
                            timestamps,
                        )
                    ]
        return self._derived

    def __iter__(self) -> Iterator[Record]:
        return iter(self.to_records())

    # -- accounting ----------------------------------------------------------------------

    def estimate_bytes(self) -> int:
        """Batch-level wire-size estimate.

        Exactly equals summing
        :func:`repro.streaming.record.estimate_record_bytes` over every row,
        so record- and batch-mode byte metrics agree.
        """
        rows = self._rows
        if rows is not None and not self._updates:
            from repro.streaming.record import estimate_record_bytes

            return sum(estimate_record_bytes(r) for r in rows)
        if self._rows is not None:
            from repro.streaming.record import estimate_record_bytes

            return sum(estimate_record_bytes(r) for r in self.to_records())
        from repro.streaming.record import estimate_value_bytes

        total = 8 * self._length
        for name in self.field_names():
            values = self._columns[name]
            name_len = len(name)
            for value in values:
                if value is MISSING:
                    continue
                total += name_len + estimate_value_bytes(value)
        return total

    def __repr__(self) -> str:
        return f"RecordBatch({len(self)} rows, fields={self.field_names()})"


def batchify(
    records: Iterable[Record], batch_size: int = 256
) -> Iterator[RecordBatch]:
    """Chunk a record stream into micro-batches of at most ``batch_size`` rows."""
    if batch_size < 1:
        raise StreamError("batch_size must be at least 1")
    buffer: List[Record] = []
    for record in records:
        buffer.append(record)
        if len(buffer) >= batch_size:
            yield RecordBatch.from_records(buffer)
            buffer = []
    if buffer:
        yield RecordBatch.from_records(buffer)


def unbatchify(batches: Iterable[RecordBatch]) -> Iterator[Record]:
    """Flatten micro-batches back into a record stream (sink adapter)."""
    for batch in batches:
        yield from batch.to_records()
