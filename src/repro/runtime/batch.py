"""Columnar micro-batches.

A :class:`RecordBatch` holds a fixed number of records with per-field value
columns.  Batches are what flows between the vectorized operators of the
batch execution engine: instead of paying Python-interpreter overhead per
record and per operator, each operator touches whole columns at a time.

Batches are **lazily** columnar: a batch built from records keeps the row
objects as its backbone and materializes a column the first time an operator
reads that field.  A pipeline that filters on three fields out of twenty only
ever transposes three columns, and converting an untouched batch back to
records is free (the original row objects are returned).  Derived batches
(filtered, mapped) share the unchanged columns and row pointers — slicing
copies pointers, never payload values.

Columns have up to two physical representations, kept in sync lazily:

* a plain Python **list** (always available on demand; the representation
  row reconstruction and per-record fallbacks use), and
* a typed **numpy array** (see :mod:`repro.runtime.columns`), built the
  first time an array kernel asks for the column and propagated zero-copy
  through ``slice``/``take``/``compress`` — under the numpy backend a
  filtered batch never re-touches Python objects for its array columns.

Conversions between the two are exact: native dtypes are used only for
type-homogeneous ``bool``/``int``/``float`` columns (``tolist`` round-trips
the identical values) and everything else is an ``object`` array holding the
original Python objects.

Records inside one batch may be heterogeneous (e.g. the merged outputs of a
per-record bridge).  Absent fields are represented by the :data:`MISSING`
sentinel in materialized list columns so a batch round-trip neither invents
``None`` fields nor loses the distinction between "absent" and "is None";
columns with MISSING entries never get a (strict) array representation —
:meth:`RecordBatch.numeric_or_none` exposes them to coordinate kernels as
``float64`` values plus a validity mask instead.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import StreamError
from repro.runtime.columns import as_list, get_numpy, is_ndarray, masked_floats, typed_array
from repro.streaming.record import Record, fast_record as _fast_record

class _MissingType:
    """The type of :data:`MISSING`; a pickle-stable process-wide singleton.

    Operators test for absent fields with ``value is MISSING``, so the
    sentinel must keep its identity across a pickle round-trip (worker
    processes return batches/records that may reference it).  ``__reduce__``
    restores the canonical instance instead of materializing a new object.
    Truthiness is untouched (instances stay truthy, like the plain
    ``object()`` the sentinel used to be).
    """

    _instance: Optional["_MissingType"] = None

    def __new__(cls) -> "_MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_MissingType, ())

    def __repr__(self) -> str:
        return "MISSING"


#: Sentinel marking a field a record did not carry (distinct from ``None``).
MISSING = _MissingType()

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
_UNSET = object()


class RecordBatch:
    """A micro-batch of records with lazily materialized columns."""

    __slots__ = (
        "_rows",
        "_updates",
        "_columns",
        "_arrays",
        "_numeric",
        "_missing",
        "_timestamps",
        "_ts_array",
        "_field_order",
        "_length",
        "_derived",
        "_version",
        "_derived_version",
        "_row_cache",
    )

    def __init__(
        self,
        columns: Dict[str, List[Any]],
        timestamps: List[float],
        has_missing: bool = False,
    ) -> None:
        """A purely column-backed batch (``from_records`` builds row-backed ones)."""
        self._rows: Optional[List[Record]] = None
        self._updates: Optional[Dict[str, Any]] = None
        self._columns: Dict[str, List[Any]] = dict(columns)
        self._arrays: Dict[str, Any] = {}
        self._numeric: Dict[str, Any] = {}
        self._field_order: Optional[List[str]] = list(columns)
        self._missing = {name for name, values in columns.items() if MISSING in values} if has_missing else set()
        self._timestamps: Optional[List[float]] = list(timestamps)
        self._ts_array: Any = None
        self._length = len(timestamps)
        self._derived: Optional[List[Record]] = None
        self._version = 0
        self._derived_version = 0
        self._row_cache: Optional[Dict[int, Record]] = None

    @classmethod
    def _raw(cls) -> "RecordBatch":
        batch = cls.__new__(cls)
        batch._rows = None
        batch._updates = None
        batch._columns = {}
        batch._arrays = {}
        batch._numeric = {}
        batch._field_order = None
        batch._missing = set()
        batch._timestamps = None
        batch._ts_array = None
        batch._length = 0
        batch._derived = None
        batch._version = 0
        batch._derived_version = 0
        batch._row_cache = None
        return batch

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Sequence[Record], timestamps: Optional[List[float]] = None
    ) -> "RecordBatch":
        """Wrap a sequence of records; columns materialize on first access.

        ``timestamps`` optionally seeds the timestamp column when the caller
        already holds the event times (e.g. CEP emissions stamped with their
        match end times), saving the per-row re-derivation.
        """
        batch = cls._raw()
        batch._rows = list(records) if not isinstance(records, list) else records
        batch._length = len(batch._rows)
        batch._timestamps = timestamps
        return batch

    @classmethod
    def from_columns(
        cls,
        columns: Dict[str, Any],
        timestamps: List[float],
        ts_array: Any = None,
    ) -> "RecordBatch":
        """A purely column-backed batch from finished output columns.

        This is the emission-side constructor used by
        :class:`~repro.runtime.columns.BatchBuilder`: column values may be
        plain lists *or* ready typed ndarrays (a kernel that declared its
        output dtype), which are installed as the batch's array
        representation directly — downstream operators get native kernels
        without re-running dtype inference.  Columns must be hole-free
        (emitting kernels produce every field of every row; MISSING-holed
        outputs go through :meth:`with_columns` ``has_missing`` instead).
        """
        batch = cls._raw()
        for name, values in columns.items():
            if is_ndarray(values):
                batch._arrays[name] = values
            else:
                batch._columns[name] = values
        batch._field_order = list(columns)
        batch._timestamps = timestamps
        batch._ts_array = ts_array
        batch._length = len(timestamps)
        return batch

    @classmethod
    def empty(cls) -> "RecordBatch":
        return cls({}, [])

    # -- shape ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def timestamps(self) -> List[float]:
        if self._timestamps is None:
            self._timestamps = [r.timestamp for r in self._rows]  # type: ignore[union-attr]
        return self._timestamps

    def timestamps_array(self):
        """The event timestamps as a ``float64`` array (``None`` under the
        python backend)."""
        if self._ts_array is None:
            np = get_numpy()
            if np is None:
                return None
            self._ts_array = np.asarray(self.timestamps, dtype=np.float64)
        return self._ts_array

    def field_names(self) -> List[str]:
        """Field names in record order (unions heterogeneous rows)."""
        if self._field_order is not None:
            return list(self._field_order)
        names: List[str] = []
        seen = set()
        for record in self._rows or ():
            for name in record.data:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        for name in self._updates or ():
            if name not in seen:
                seen.add(name)
                names.append(name)
        return names

    # -- column access -------------------------------------------------------------

    def _materialize(self, name: str) -> Optional[List[Any]]:
        """The raw list column (may contain MISSING), or None when entirely absent."""
        values = self._columns.get(name)
        if values is not None:
            return values
        array = self._arrays.get(name)
        if array is not None:
            values = array.tolist()
            self._columns[name] = values
            return values
        rows = self._rows
        if rows is None:
            return None
        try:
            values = [r.data[name] for r in rows]
        except KeyError:
            values = [r.data.get(name, MISSING) for r in rows]
            self._missing.add(name)
        self._columns[name] = values
        return values

    def _missing_error(self, name: str) -> StreamError:
        return StreamError(
            f"record has no field {name!r}; fields: {sorted(self.field_names())}"
        )

    def column(self, name: str) -> List[Any]:
        """The column for ``name`` as a list; raises like ``Record.__getitem__``
        when any row lacks the field."""
        values = self._materialize(name)
        if values is None:
            raise self._missing_error(name)
        if name in self._missing:
            # The missing marker is inherited by derived batches (slice/take/
            # compress) as a hint; rows lacking the field may have been
            # filtered out since, so verify against *this* batch's values —
            # the record engine only raises for rows actually present.
            if MISSING in values:
                raise self._missing_error(name)
            self._missing.discard(name)
        return values

    def array(self, name: str):
        """The column as a typed ndarray, or ``None`` under the python backend.

        Error semantics are exactly :meth:`column`'s (an entirely absent or
        MISSING-holed field raises :class:`StreamError`).  Homogeneous
        ``bool``/``int``/``float`` columns come back with a native dtype;
        everything else as an ``object`` array over the same Python objects.
        The array is cached and flows zero-copy through derived batches.
        """
        array = self._arrays.get(name)
        if array is not None:
            return array
        if get_numpy() is None:
            return None
        array = typed_array(self.column(name))
        if array is not None:
            self._arrays[name] = array
        return array

    def none_mask(self, name: str, invert: bool):
        """Precomputed ``column == None`` (or ``!= None``) mask, if one exists.

        Only cache-backed source batches (:mod:`repro.runtime.storage`) have
        one; everywhere else the compiled ``== None`` kernels take their
        regular path.  ``None`` means "not available", never "empty mask".
        """
        return None

    def column_or_none(self, name: str) -> List[Any]:
        """The column with ``Record.get`` semantics: absent values become None."""
        values = self._materialize(name)
        if values is None:
            return [None] * self._length
        if name in self._missing:
            return [None if v is MISSING else v for v in values]
        return values

    def numeric_or_none(self, name: str):
        """``(float64 values, validity)`` with ``column_or_none`` semantics.

        For numeric columns — including ones holed by ``None`` values or the
        MISSING sentinel — returns a ``float64`` array plus a boolean
        validity mask (``None`` mask = every row valid); rows that
        ``column_or_none`` would report as ``None`` are invalid.  Returns
        ``None`` for non-numeric columns and under the python backend, so
        callers keep their per-row fallback.  Used by the coordinate kernels
        (grid probes, haversine scoring), which cast values per row anyway.
        """
        cached = self._numeric.get(name, _UNSET)
        if cached is not _UNSET:
            return cached
        np = get_numpy()
        result = None
        if np is not None:
            array = self._arrays.get(name)
            if array is not None and array.dtype.kind in "bif":
                values = array if array.dtype.kind == "f" else array.astype(np.float64)
                result = (values, None)
            else:
                values_list = self._materialize(name)
                if values_list is None:
                    result = (np.zeros(self._length), np.zeros(self._length, dtype=bool))
                else:
                    result = masked_floats(values_list, MISSING)
        self._numeric[name] = result
        return result

    # -- transformations ---------------------------------------------------------------

    def _derive_shape(
        self,
        rows: Optional[List[Record]],
        columns: Dict[str, List[Any]],
        arrays: Dict[str, Any],
        numeric: Dict[str, Any],
        timestamps: Optional[List[float]],
        ts_array: Any,
        length: int,
    ) -> "RecordBatch":
        batch = RecordBatch._raw()
        batch._rows = rows
        batch._columns = columns
        batch._arrays = arrays
        batch._numeric = numeric
        batch._missing = set(self._missing)
        batch._timestamps = timestamps
        batch._ts_array = ts_array
        batch._length = length
        if self._updates is not None:
            batch._updates = {
                name: (columns[name] if name in columns else arrays[name])
                for name in self._updates
            }
        if rows is None:
            batch._field_order = self.field_names()
        return batch

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A contiguous sub-batch (lists are sliced, arrays are views)."""
        norm_start, norm_stop, _ = slice(start, stop).indices(self._length)
        rows = self._rows[norm_start:norm_stop] if self._rows is not None else None
        arrays = {name: array[norm_start:norm_stop] for name, array in self._arrays.items()}
        columns = {
            name: values[norm_start:norm_stop]
            for name, values in self._columns.items()
            if name not in arrays
        }
        numeric = {
            name: (
                (entry[0][norm_start:norm_stop], None if entry[1] is None else entry[1][norm_start:norm_stop])
                if entry is not None
                else None
            )
            for name, entry in self._numeric.items()
        }
        timestamps = (
            self._timestamps[norm_start:norm_stop] if self._timestamps is not None else None
        )
        ts_array = self._ts_array[norm_start:norm_stop] if self._ts_array is not None else None
        return self._derive_shape(
            rows, columns, arrays, numeric, timestamps, ts_array, max(0, norm_stop - norm_start)
        )

    def take(self, indices: Sequence[int]) -> "RecordBatch":
        """The rows at the given positions, in the given order.

        ``indices`` may be a Python list or an index ndarray (the output of
        ``np.flatnonzero`` on a filter mask): list-backed columns and rows
        are gathered with Python list comprehensions, array-backed columns
        with C fancy indexing.
        """
        if is_ndarray(indices):
            index_array = indices
            index_list = indices.tolist()
        else:
            index_list = indices if isinstance(indices, list) else list(indices)
            index_array = None
        rows = self._rows
        taken_rows = [rows[i] for i in index_list] if rows is not None else None
        arrays: Dict[str, Any] = {}
        numeric: Dict[str, Any] = {}
        if self._arrays or any(entry is not None for entry in self._numeric.values()):
            if index_array is None:
                np = get_numpy()
                index_array = np.asarray(index_list, dtype=np.intp) if np is not None else None
            arrays = {name: array[index_array] for name, array in self._arrays.items()}
            numeric = {
                name: (
                    (entry[0][index_array], None if entry[1] is None else entry[1][index_array])
                    if entry is not None
                    else None
                )
                for name, entry in self._numeric.items()
            }
        else:
            numeric = dict(self._numeric)
        columns = {
            name: [values[i] for i in index_list]
            for name, values in self._columns.items()
            if name not in arrays
        }
        timestamps = self._timestamps
        taken_ts = [timestamps[i] for i in index_list] if timestamps is not None else None
        ts_array = self._ts_array[index_array] if self._ts_array is not None and index_array is not None else None
        return self._derive_shape(
            taken_rows, columns, arrays, numeric, taken_ts, ts_array, len(index_list)
        )

    def compress(self, mask: Sequence[Any]) -> "RecordBatch":
        """The rows whose mask entry is truthy (vectorized filter kernel).

        A boolean ndarray mask (the numpy backend's compiled predicates)
        selects via ``np.flatnonzero``; list masks via a Python scan.
        """
        if is_ndarray(mask):
            np = get_numpy()
            indices = np.flatnonzero(mask)
            if len(indices) == self._length:
                return self
            return self.take(indices)
        indices = [i for i, keep in enumerate(mask) if keep]
        if len(indices) == self._length:
            return self
        return self.take(indices)

    def with_columns(
        self, updates: Dict[str, Any], has_missing: bool = False
    ) -> "RecordBatch":
        """Add or overwrite columns, mirroring ``Record.derive`` field order:
        existing fields keep their position, new fields append in update order.

        Update values may be Python lists or ndarrays (the output of ufunc
        kernels); arrays are stored as the column's array representation and
        only converted to a list if row reconstruction needs them.

        ``has_missing`` declares that update columns may contain the
        :data:`MISSING` sentinel (a row the operator leaves untouched, e.g. a
        position-less record passing through a plugin kernel); those entries
        are tracked so the row neither gains the field nor turns it into
        ``None`` when materialized.  The flag exists so the hot map path does
        not pay a sentinel scan per column.  MISSING-holed updates must be
        lists (array kernels never produce MISSING).
        """
        batch = RecordBatch._raw()
        batch._rows = self._rows
        array_updates = {name: v for name, v in updates.items() if is_ndarray(v)}
        list_updates = {name: v for name, v in updates.items() if name not in array_updates}
        batch._arrays = {
            name: array for name, array in self._arrays.items() if name not in updates
        }
        batch._arrays.update(array_updates)
        batch._columns = {
            name: values for name, values in self._columns.items() if name not in updates
        }
        batch._columns.update(list_updates)
        batch._numeric = {
            name: entry for name, entry in self._numeric.items() if name not in updates
        }
        batch._missing = self._missing - set(updates)
        if has_missing:
            batch._missing.update(
                name for name, values in list_updates.items() if MISSING in values
            )
        batch._timestamps = self._timestamps
        batch._ts_array = self._ts_array
        batch._length = self._length
        if self._rows is not None:
            merged = dict(self._updates) if self._updates else {}
            merged.update(updates)
            batch._updates = merged
        else:
            order = list(self._field_order or ())
            known = set(order)
            order.extend(name for name in updates if name not in known)
            batch._field_order = order
        return batch

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every in-place change (``set_column``).

        Derived-row caches record the version they were materialized at and
        are rebuilt when it moves, so consumers of :meth:`to_records` (the
        record bridges in particular) never observe stale rows — an explicit
        dirty check instead of an implicit reliance on operator ordering.
        """
        return self._version

    def set_column(self, name: str, values: Sequence[Any]) -> None:
        """Write a column **in place**, invalidating cached rows.

        This is the one sanctioned mutation on a batch (everything else
        derives a new batch).  It exists for plugin batch kernels that
        annotate a batch they received rather than deriving a copy; the
        version bump guarantees rows materialized *before* the write are
        re-derived on the next :meth:`to_records` call.  ``values`` may
        contain :data:`MISSING` to mark absent fields and must match the
        batch length.
        """
        if len(values) != self._length:
            raise StreamError(
                f"column {name!r} has {len(values)} values for a batch of {self._length} rows"
            )
        values = as_list(values) if is_ndarray(values) else list(values)
        self._columns[name] = values
        self._arrays.pop(name, None)
        self._numeric.pop(name, None)
        if MISSING in values:
            self._missing.add(name)
        else:
            self._missing.discard(name)
        if self._rows is not None:
            if self._updates is None:
                self._updates = {}
            self._updates[name] = values
        elif self._field_order is not None and name not in self._field_order:
            self._field_order.append(name)
        self._version += 1

    def project(self, fields: Sequence[str]) -> "RecordBatch":
        """Keep only the listed columns (raises like ``Record.project`` on a
        missing field); the result is purely column-backed."""
        columns: Dict[str, List[Any]] = {}
        arrays: Dict[str, Any] = {}
        for name in fields:
            array = self._arrays.get(name)
            if array is not None:
                arrays[name] = array
            else:
                columns[name] = self.column(name)
        batch = RecordBatch._raw()
        batch._columns = columns
        batch._arrays = arrays
        batch._field_order = list(fields)
        batch._timestamps = self.timestamps
        batch._ts_array = self._ts_array
        batch._length = self._length
        return batch

    # -- row access ---------------------------------------------------------------------

    def _update_lists(self) -> Dict[str, List[Any]]:
        """The update columns as lists (array-valued updates are converted
        in place, so the conversion happens at most once per batch)."""
        updates = self._updates or {}
        for name, values in updates.items():
            if is_ndarray(values):
                updates[name] = values.tolist()
        return updates

    def to_records(self) -> List[Record]:
        """The rows as records.

        Free for an untouched row-backed batch (the original records are
        returned); derived rows are materialized once and cached.  The cache
        carries the batch :attr:`version` it was built at, so an in-place
        :meth:`set_column` after materialization transparently triggers a
        re-derive instead of serving stale rows.
        """
        rows = self._rows
        if rows is not None and not self._updates:
            return rows
        if self._derived is not None and self._derived_version != self._version:
            self._derived = None
        if self._derived is None:
            self._derived_version = self._version
            if rows is not None:
                updates = self._update_lists()
                names = list(updates)
                columns = [updates[name] for name in names]
                derived = []
                if self._missing.intersection(names):
                    # update columns may hold MISSING (plugin kernels marking
                    # rows they passed through untouched): such a row keeps its
                    # original payload for that field instead of gaining it
                    for i, record in enumerate(rows):
                        data = dict(record.data)
                        for name, values in zip(names, columns):
                            value = values[i]
                            if value is not MISSING:
                                data[name] = value
                        derived.append(_fast_record(data, record.timestamp))
                elif len(names) == 1:
                    # the common one-assignment map: no per-row zip
                    name, values = names[0], columns[0]
                    for i, record in enumerate(rows):
                        data = dict(record.data)
                        data[name] = values[i]
                        derived.append(_fast_record(data, record.timestamp))
                else:
                    for i, record in enumerate(rows):
                        data = dict(record.data)
                        for name, values in zip(names, columns):
                            data[name] = values[i]
                        derived.append(_fast_record(data, record.timestamp))
                self._derived = derived
            else:
                names = self.field_names()
                columns = [self._materialize(name) for name in names]
                timestamps = self.timestamps
                if self._missing:
                    derived = []
                    for i, timestamp in enumerate(timestamps):
                        data = {}
                        for name, values in zip(names, columns):
                            value = values[i]
                            if value is not MISSING:
                                data[name] = value
                        derived.append(_fast_record(data, timestamp))
                    self._derived = derived
                else:
                    self._derived = [
                        _fast_record(dict(zip(names, row)), timestamp)
                        for row, timestamp in zip(
                            zip(*columns) if columns else ([()] * len(timestamps)),
                            timestamps,
                        )
                    ]
        return self._derived

    def row_at(self, index: int) -> Record:
        """One row as a record, materialized lazily and cached per index.

        Sparse counterpart of :meth:`to_records` for consumers that touch
        only a few rows of a batch (the CEP operator binding matched events):
        rows that are never accessed are never built.  Returns the identical
        objects :meth:`to_records` would return when those are free or
        already cached.
        """
        rows = self._rows
        if rows is not None and not self._updates:
            return rows[index]
        if self._derived is not None and self._derived_version == self._version:
            return self._derived[index]
        cache = self._row_cache
        if cache is None or self._derived_version != self._version:
            self._derived_version = self._version
            self._derived = None
            cache = self._row_cache = {}
        record = cache.get(index)
        if record is not None:
            return record
        if rows is not None:
            base = rows[index]
            data = dict(base.data)
            for name, values in self._update_lists().items():
                value = values[index]
                if value is not MISSING:
                    data[name] = value
            record = _fast_record(data, base.timestamp)
        else:
            data = {}
            for name in self.field_names():
                values = self._materialize(name)
                value = values[index]  # type: ignore[index]
                if value is not MISSING:
                    data[name] = value
            record = _fast_record(data, self.timestamps[index])
        cache[index] = record
        return record

    def __iter__(self) -> Iterator[Record]:
        return iter(self.to_records())

    # -- accounting ----------------------------------------------------------------------

    def estimate_bytes(self) -> int:
        """Batch-level wire-size estimate.

        Exactly equals summing
        :func:`repro.streaming.record.estimate_record_bytes` over every row,
        so record- and batch-mode byte metrics agree.
        """
        rows = self._rows
        if rows is not None and not self._updates:
            from repro.streaming.record import estimate_record_bytes

            return sum(estimate_record_bytes(r) for r in rows)
        if self._rows is not None:
            from repro.streaming.record import estimate_record_bytes

            return sum(estimate_record_bytes(r) for r in self.to_records())
        from repro.streaming.record import estimate_value_bytes

        total = 8 * self._length
        for name in self.field_names():
            values = self._materialize(name)
            name_len = len(name)
            for value in values:  # type: ignore[union-attr]
                if value is MISSING:
                    continue
                total += name_len + estimate_value_bytes(value)
        return total

    def __repr__(self) -> str:
        return f"RecordBatch({len(self)} rows, fields={self.field_names()})"


def batchify(
    records: Iterable[Record], batch_size: int = 256
) -> Iterator[RecordBatch]:
    """Chunk a record stream into micro-batches of at most ``batch_size`` rows."""
    if batch_size < 1:
        raise StreamError("batch_size must be at least 1")
    buffer: List[Record] = []
    for record in records:
        buffer.append(record)
        if len(buffer) >= batch_size:
            yield RecordBatch.from_records(buffer)
            buffer = []
    if buffer:
        yield RecordBatch.from_records(buffer)


def unbatchify(batches: Iterable[RecordBatch]) -> Iterator[Record]:
    """Flatten micro-batches back into a record stream (sink adapter)."""
    for batch in batches:
        yield from batch.to_records()
