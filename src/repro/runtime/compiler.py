"""Columnar expression compiler.

Compiles the per-record expression trees of
:mod:`repro.streaming.expressions` into closures that evaluate one whole
:class:`~repro.runtime.batch.RecordBatch` at a time and return a column of
values.  The tree is walked once at compile time; at run time each node costs
one Python call per *batch*.

Under the numpy column backend (:mod:`repro.runtime.columns`) field reads
return typed arrays and the binary/unary kernels run as real ufuncs:
comparisons, arithmetic and the boolean combinators produce mask/value arrays
with no per-row interpreter dispatch, which is what lets the batch filter
select rows via ``np.flatnonzero`` and the map operator attach result columns
without ever materializing Python rows.  Under the python backend (or for
inputs that are not arrays) every kernel falls back to the original
list-comprehension form.

The array kernels are **exact**, not approximate — each one is enabled only
where numpy reproduces the record engine's Python semantics bit-for-bit:

* native dtypes exist only for type-homogeneous columns (so ``int`` stays
  arbitrary-precision-exact within ``int64`` and never silently becomes
  ``float``);
* ``bool`` operands of arithmetic are cast to ``int64`` first (Python's
  ``True + True == 2``, where numpy's bool ufuncs saturate);
* division only vectorizes over ``float64`` (numpy's ``int/int`` rounds the
  operands, CPython rounds the exact rational) and falls back to the Python
  kernel when numpy flags a zero-division/invalid operation, so the
  ``ZeroDivisionError`` the record engine would raise is raised identically;
* ``%`` only vectorizes over integers (C and CPython agree exactly there);
* comparisons mixing ``int64`` and ``float64`` fall back (numpy compares
  them through a lossy cast, CPython exactly);
* ``object``-dtype operands run the ordinary Python operators element-wise
  inside numpy's C loop — same values, same exceptions — and mixed
  native/object operands are boxed back to Python scalars first.

One documented divergence remains: ``int64`` arithmetic that overflows
2**63 wraps instead of promoting to a Python long.  (Column *values* beyond
``int64`` force the object representation, so this needs two in-range values
whose sum overflows.)

The exact built-in expression types are vectorized here; expression
subclasses defined by plugins can register their own columnar kernels via
:func:`register_vectorizer` (the NebulaMEOS spatial expressions do, probing
the grid index with whole columns).  Unregistered subclasses may override
``evaluate`` with arbitrary record-level logic, so they fall back to
evaluating the expression against the batch's materialized rows — identical
semantics, just without the columnar speedup.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.runtime.batch import RecordBatch
from repro.runtime.columns import get_numpy, is_ndarray
from repro.streaming.expressions import (
    AliasedExpression,
    BinaryExpression,
    ConstantExpression,
    Expression,
    FieldExpression,
    FunctionExpression,
    LambdaExpression,
    TimestampExpression,
    UnaryExpression,
)

#: A compiled expression: batch in, one value per row out (list or ndarray).
ColumnFunction = Callable[[RecordBatch], List[Any]]


def _to_list(values: Any) -> List[Any]:
    return values.tolist() if is_ndarray(values) else values


def _compile_field(name: str) -> ColumnFunction:
    def read_column(batch: RecordBatch) -> List[Any]:
        array = batch.array(name)
        return array if array is not None else batch.column(name)

    return read_column


def _compile_constant(value: Any) -> ColumnFunction:
    def broadcast(batch: RecordBatch) -> List[Any]:
        return [value] * len(batch)

    return broadcast


def _compile_fallback(expression: Expression) -> ColumnFunction:
    evaluate = expression.evaluate

    def per_record(batch: RecordBatch) -> List[Any]:
        return [evaluate(record) for record in batch.to_records()]

    return per_record


# -- pure-Python kernels ---------------------------------------------------------------
#
# Symbol-specialized binary kernels over plain lists.  ``map(lambda a, b:
# a > b, ...)`` pays a Python frame per row; a comprehension with the operator
# inlined is several times cheaper and — because the record engine's lambdas
# evaluate both sides unconditionally — semantically identical, including for
# "and"/"or" (which return ``bool(a) and bool(b)``, not a short-circuited
# operand).

_PY_ZIP_KERNELS: dict = {
    "+": lambda l, r: [x + y for x, y in zip(l, r)],
    "-": lambda l, r: [x - y for x, y in zip(l, r)],
    "*": lambda l, r: [x * y for x, y in zip(l, r)],
    "/": lambda l, r: [x / y for x, y in zip(l, r)],
    "%": lambda l, r: [x % y for x, y in zip(l, r)],
    ">": lambda l, r: [x > y for x, y in zip(l, r)],
    ">=": lambda l, r: [x >= y for x, y in zip(l, r)],
    "<": lambda l, r: [x < y for x, y in zip(l, r)],
    "<=": lambda l, r: [x <= y for x, y in zip(l, r)],
    "==": lambda l, r: [x == y for x, y in zip(l, r)],
    "!=": lambda l, r: [x != y for x, y in zip(l, r)],
    "and": lambda l, r: [bool(x) and bool(y) for x, y in zip(l, r)],
    "or": lambda l, r: [bool(x) or bool(y) for x, y in zip(l, r)],
}

_PY_CONST_RIGHT_KERNELS: dict = {
    "+": lambda l, c: [x + c for x in l],
    "-": lambda l, c: [x - c for x in l],
    "*": lambda l, c: [x * c for x in l],
    "/": lambda l, c: [x / c for x in l],
    "%": lambda l, c: [x % c for x in l],
    ">": lambda l, c: [x > c for x in l],
    ">=": lambda l, c: [x >= c for x in l],
    "<": lambda l, c: [x < c for x in l],
    "<=": lambda l, c: [x <= c for x in l],
    "==": lambda l, c: [x == c for x in l],
    "!=": lambda l, c: [x != c for x in l],
    # The non-constant side is still evaluated (the record engine's lambdas
    # evaluate both operands), only the per-row bool coercion is elided.
    "and": lambda l, c: [bool(x) for x in l] if c else [False for _ in l],
    "or": lambda l, c: [True for _ in l] if c else [bool(x) for x in l],
}

_PY_CONST_LEFT_KERNELS: dict = {
    "+": lambda c, r: [c + y for y in r],
    "-": lambda c, r: [c - y for y in r],
    "*": lambda c, r: [c * y for y in r],
    "/": lambda c, r: [c / y for y in r],
    "%": lambda c, r: [c % y for y in r],
    ">": lambda c, r: [c > y for y in r],
    ">=": lambda c, r: [c >= y for y in r],
    "<": lambda c, r: [c < y for y in r],
    "<=": lambda c, r: [c <= y for y in r],
    "==": lambda c, r: [c == y for y in r],
    "!=": lambda c, r: [c != y for y in r],
    "and": lambda c, r: [bool(y) for y in r] if c else [False for _ in r],
    "or": lambda c, r: [True for _ in r] if c else [bool(y) for y in r],
}

_COMPARISONS = {">", ">=", "<", "<=", "==", "!="}
_ARITHMETIC = {"+", "-", "*", "/", "%"}


# -- array kernels ---------------------------------------------------------------------


def _as_bool(array, np):
    """Per-element Python truthiness as a bool array (C-level for natives)."""
    return array if array.dtype == np.bool_ else array.astype(bool)


def bool_mask(values: Any):
    """A native boolean mask with Python truthiness semantics, else ``None``.

    For a compiled predicate column of native dtype this is the exact
    per-row ``bool(value)``: booleans pass through, int/float casts match
    CPython truthiness element-wise (``NaN`` is truthy both ways).  Returns
    ``None`` for lists and object arrays — callers (the vectorized
    threshold-window kernel) then take their per-row path, which applies
    ``bool()`` itself.
    """
    if not is_ndarray(values):
        return None
    kind = values.dtype.kind
    if kind == "b":
        return values
    if kind in "iuf":
        return values.astype(get_numpy().bool_)
    return None


def _cmp_ufunc(symbol: str, np):
    return {
        ">": np.greater,
        ">=": np.greater_equal,
        "<": np.less,
        "<=": np.less_equal,
        "==": np.equal,
        "!=": np.not_equal,
    }[symbol]


def _arith_ufunc(symbol: str, np):
    return {
        "+": np.add,
        "-": np.subtract,
        "*": np.multiply,
        "/": np.true_divide,
        "%": np.remainder,
    }[symbol]


def _native_operand(value, np):
    """Normalize a native-path operand: bool arrays/consts become int64/int
    (Python arithmetic treats ``True`` as ``1``); returns ``None`` for
    operands the native kernels must not touch."""
    if is_ndarray(value):
        if value.dtype == np.bool_:
            return value.astype(np.int64)
        return value
    if type(value) is bool:
        return int(value)
    return value


def _kind_of(value, np) -> str:
    """'i' / 'f' for an int64/float64 array or int/float scalar."""
    if is_ndarray(value):
        return value.dtype.kind
    return "i" if type(value) is int else "f"


def _array_binary(symbol: str, left: Any, right: Any):
    """The ufunc result for a binary kernel, or ``None`` to take the exact
    Python fallback.  Operands are ndarrays or (for one side) scalar
    constants already screened by :func:`_const_supported`."""
    np = get_numpy()
    if symbol == "and" or symbol == "or":
        masks = []
        for operand in (left, right):
            if is_ndarray(operand):
                masks.append(_as_bool(operand, np))
            elif symbol == "and" and not operand:
                return np.zeros(len(left if is_ndarray(left) else right), dtype=bool)
            elif symbol == "or" and operand:
                return np.ones(len(left if is_ndarray(left) else right), dtype=bool)
        if len(masks) == 1:
            return masks[0]
        return (masks[0] & masks[1]) if symbol == "and" else (masks[0] | masks[1])

    left_object = is_ndarray(left) and left.dtype.kind == "O"
    right_object = is_ndarray(right) and right.dtype.kind == "O"
    if left_object or right_object:
        # Box any native side back to Python scalars, then run the ordinary
        # Python operators element-wise inside the object loop.
        if is_ndarray(left) and not left_object:
            left = left.astype(object)
        if is_ndarray(right) and not right_object:
            right = right.astype(object)
        ufunc = _cmp_ufunc(symbol, np) if symbol in _COMPARISONS else _arith_ufunc(symbol, np)
        return ufunc(left, right)

    if symbol in _COMPARISONS:
        if left is None or right is None:
            # Only ==/!= reach here (screened); numpy matches Python: nothing
            # equals None.
            return _cmp_ufunc(symbol, np)(left, right)
        left = _native_operand(left, np)
        right = _native_operand(right, np)
        if _int_const_overflows(left) or _int_const_overflows(right):
            return None
        if _kind_of(left, np) != _kind_of(right, np):
            # numpy compares int64 against float64 through a lossy cast;
            # CPython compares exactly.  A scalar constant can sometimes be
            # converted to the array's kind without changing any outcome.
            refined = _refine_mixed_comparison(left, right)
            if refined is None:
                return None
            left, right = refined
        return _cmp_ufunc(symbol, np)(left, right)

    left = _native_operand(left, np)
    right = _native_operand(right, np)
    if _int_const_overflows(left) or _int_const_overflows(right):
        return None
    kinds = {_kind_of(left, np), _kind_of(right, np)}
    if symbol == "/":
        if kinds == {"i"}:
            return None  # CPython rounds int/int exactly; float64 casting does not
        with np.errstate(divide="raise", invalid="raise"):
            try:
                return np.true_divide(left, right)
            except FloatingPointError:
                return None  # replay in Python for the exact ZeroDivisionError/nan
    if symbol == "%":
        if kinds != {"i"}:
            return None  # C and CPython agree exactly on integer remainders only
        with np.errstate(divide="raise", invalid="raise"):
            try:
                return np.remainder(left, right)
            except FloatingPointError:
                return None
    return _arith_ufunc(symbol, np)(left, right)


#: Integers up to 2**53 convert to float64 without rounding, so comparisons
#: against an exactly-converted constant cannot diverge from CPython's
#: exact mixed-type comparison.
_EXACT_FLOAT_INT = 2**53


def _int_const_overflows(value: Any) -> bool:
    """A scalar int constant numpy could not represent as int64."""
    return (
        not is_ndarray(value)
        and type(value) is int
        and not (-(2**63) <= value < 2**63)
    )


def _refine_mixed_comparison(left: Any, right: Any):
    """Convert a scalar constant to the array operand's kind when that is
    provably exact, or ``None`` when the Python fallback must decide."""

    def refine(const, array_kind):
        if type(const) is int and array_kind == "f" and abs(const) <= _EXACT_FLOAT_INT:
            return float(const)
        if (
            type(const) is float
            and array_kind == "i"
            and const == int(const)
            and abs(const) <= _EXACT_FLOAT_INT
        ):
            return int(const)
        return None

    if is_ndarray(left) and not is_ndarray(right):
        const = refine(right, left.dtype.kind)
        return None if const is None else (left, const)
    if is_ndarray(right) and not is_ndarray(left):
        const = refine(left, right.dtype.kind)
        return None if const is None else (const, right)
    return None


def _const_supported(symbol: str, constant: Any) -> bool:
    """Whether a constant operand may enter the array kernels at all.

    Containers and arbitrary objects are kept out (numpy would broadcast a
    list instead of treating it as one value); strings and other scalars are
    fine against object arrays and are screened per-dtype in
    :func:`_array_binary` via the object/native split.  ``None`` only makes
    sense for equality.
    """
    if symbol in ("and", "or"):
        return True
    if constant is None:
        return symbol in ("==", "!=")
    return type(constant) in (bool, int, float, str)


def _str_const_blocks_native(constant: Any) -> bool:
    return type(constant) is str


def _compile_binary(expression: BinaryExpression) -> ColumnFunction:
    symbol = expression.symbol
    left, right = expression.left, expression.right
    if symbol in _PY_ZIP_KERNELS:
        if symbol in ("==", "!="):
            # ``field == None`` / ``field != None``: cache-backed source
            # batches precompute the None mask once per source, making the
            # ubiquitous has-a-position filters free per batch.
            if type(right) is ConstantExpression and right.value is None and type(left) is FieldExpression:
                return _make_field_none_cmp(left.name, symbol, compile_expression(left))
            if type(left) is ConstantExpression and left.value is None and type(right) is FieldExpression:
                return _make_field_none_cmp(right.name, symbol, compile_expression(right))
        if type(right) is ConstantExpression:
            return _make_const_right(symbol, compile_expression(left), right.value)
        if type(left) is ConstantExpression:
            return _make_const_left(symbol, left.value, compile_expression(right))
        return _make_zip(symbol, compile_expression(left), compile_expression(right))
    left_fn = compile_expression(left)
    right_fn = compile_expression(right)
    op = expression.op

    def binary(batch: RecordBatch) -> List[Any]:
        return list(map(op, _to_list(left_fn(batch)), _to_list(right_fn(batch))))

    return binary


def _make_field_none_cmp(name: str, symbol: str, lf: ColumnFunction) -> ColumnFunction:
    """``field == None`` / ``field != None`` with the source-cached mask fast
    path; falls back to the regular constant kernel (which preserves the
    raising semantics for MISSING-holed columns)."""
    fallback = _make_const_right(symbol, lf, None)
    invert = symbol == "!="

    def kernel(batch: RecordBatch) -> List[Any]:
        mask = batch.none_mask(name, invert)
        if mask is not None:
            return mask
        return fallback(batch)

    return kernel


def _make_zip(symbol: str, lf: ColumnFunction, rf: ColumnFunction) -> ColumnFunction:
    py = _PY_ZIP_KERNELS[symbol]

    def kernel(batch: RecordBatch) -> List[Any]:
        left = lf(batch)
        right = rf(batch)
        if is_ndarray(left) and is_ndarray(right):
            out = _array_binary(symbol, left, right)
            if out is not None:
                return out
        return py(_to_list(left), _to_list(right))

    return kernel


def _make_const_right(symbol: str, lf: ColumnFunction, constant: Any) -> ColumnFunction:
    py = _PY_CONST_RIGHT_KERNELS[symbol]
    supported = _const_supported(symbol, constant)

    def kernel(batch: RecordBatch) -> List[Any]:
        left = lf(batch)
        if supported and is_ndarray(left):
            if (
                symbol in ("and", "or")
                or left.dtype.kind == "O"
                or not _str_const_blocks_native(constant)
            ):
                out = _array_binary(symbol, left, constant)
                if out is not None:
                    return out
        return py(_to_list(left), constant)

    return kernel


def _make_const_left(symbol: str, constant: Any, rf: ColumnFunction) -> ColumnFunction:
    py = _PY_CONST_LEFT_KERNELS[symbol]
    supported = _const_supported(symbol, constant)

    def kernel(batch: RecordBatch) -> List[Any]:
        right = rf(batch)
        if supported and is_ndarray(right):
            if (
                symbol in ("and", "or")
                or right.dtype.kind == "O"
                or not _str_const_blocks_native(constant)
            ):
                out = _array_binary(symbol, constant, right)
                if out is not None:
                    return out
        return py(constant, _to_list(right))

    return kernel


def compile_expression(expression: Expression) -> ColumnFunction:
    """Compile an expression tree into a columnar evaluation closure."""
    kind = type(expression)
    if kind is AliasedExpression:
        return compile_expression(expression.inner)
    if kind is FieldExpression:
        return _compile_field(expression.name)
    if kind is ConstantExpression:
        return _compile_constant(expression.value)
    if kind is TimestampExpression:
        def timestamps_column(batch: RecordBatch) -> List[Any]:
            array = batch.timestamps_array()
            return array if array is not None else batch.timestamps

        return timestamps_column
    if kind is BinaryExpression:
        return _compile_binary(expression)
    if kind is UnaryExpression:
        operand = compile_expression(expression.operand)
        if expression.symbol == "not":
            # ``not bool(a)`` == ``not a`` for every value.
            def not_kernel(batch: RecordBatch) -> List[Any]:
                values = operand(batch)
                if is_ndarray(values):
                    return ~_as_bool(values, get_numpy())
                return [not x for x in values]

            return not_kernel
        if expression.symbol == "neg":
            def neg_kernel(batch: RecordBatch) -> List[Any]:
                values = operand(batch)
                if is_ndarray(values):
                    np = get_numpy()
                    if values.dtype == np.bool_:
                        values = values.astype(np.int64)  # Python: -True == -1
                    return np.negative(values)
                return [-x for x in values]

            return neg_kernel
        op = expression.op

        def unary(batch: RecordBatch) -> List[Any]:
            return list(map(op, _to_list(operand(batch))))

        return unary
    if kind is FunctionExpression:
        args = [compile_expression(arg) for arg in expression.args]
        func = expression.func
        if not args:
            return lambda batch: [func() for _ in range(len(batch))]

        def call(batch: RecordBatch) -> List[Any]:
            # args are normalized to lists so user callables always see the
            # original Python scalars, never numpy ones
            return list(map(func, *(_to_list(arg(batch)) for arg in args)))

        return call
    if kind is LambdaExpression:
        # A record-level UDF stays per-record, but the user callable is bound
        # directly — no ``evaluate`` dispatch per row.
        func = expression.func

        def per_record_udf(batch: RecordBatch) -> List[Any]:
            return [func(record) for record in batch.to_records()]

        return per_record_udf
    vectorizer = _VECTORIZERS.get(kind)
    if vectorizer is not None:
        return vectorizer(expression)
    # Plugin expression classes and any other subclass.
    return _compile_fallback(expression)


#: Registered columnar kernels for expression subclasses (e.g. the NebulaMEOS
#: spatial expressions); see :func:`register_vectorizer`.
_VECTORIZERS: Dict[type, Callable[[Expression], ColumnFunction]] = {}


def register_vectorizer(
    expression_type: type, factory: Callable[[Expression], ColumnFunction]
) -> None:
    """Register a columnar kernel for an :class:`Expression` subclass.

    ``factory`` receives the expression instance and returns a
    :data:`ColumnFunction` that must evaluate to exactly the same per-row
    values as calling ``expression.evaluate`` on each record (it may return
    a list or an ndarray).  Plugin packages (e.g.
    :mod:`repro.nebulameos.expressions`) call this at import time so their
    expressions stop falling back to per-record evaluation inside the batch
    runtime.  The registration is keyed on the exact type — subclasses that
    override ``evaluate`` register separately or keep the fallback.
    """
    _VECTORIZERS[expression_type] = factory
