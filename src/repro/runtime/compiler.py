"""Columnar expression compiler.

Compiles the per-record expression trees of
:mod:`repro.streaming.expressions` into closures that evaluate one whole
:class:`~repro.runtime.batch.RecordBatch` at a time and return a column
(list) of values.  The tree is walked once at compile time; at run time each
node costs one Python call per *batch* plus a C-level ``map``/comprehension
over the rows, instead of a full interpreter-dispatched tree walk per record.

The exact built-in expression types are vectorized here; expression
subclasses defined by plugins can register their own columnar kernels via
:func:`register_vectorizer` (the NebulaMEOS spatial expressions do, probing
the grid index with whole columns).  Unregistered subclasses may override
``evaluate`` with arbitrary record-level logic, so they fall back to
evaluating the expression against the batch's materialized rows — identical
semantics, just without the columnar speedup.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.runtime.batch import RecordBatch
from repro.streaming.expressions import (
    AliasedExpression,
    BinaryExpression,
    ConstantExpression,
    Expression,
    FieldExpression,
    FunctionExpression,
    LambdaExpression,
    TimestampExpression,
    UnaryExpression,
)

#: A compiled expression: batch in, one value per row out.
ColumnFunction = Callable[[RecordBatch], List[Any]]


def _compile_field(name: str) -> ColumnFunction:
    def read_column(batch: RecordBatch) -> List[Any]:
        return batch.column(name)

    return read_column


def _compile_constant(value: Any) -> ColumnFunction:
    def broadcast(batch: RecordBatch) -> List[Any]:
        return [value] * len(batch)

    return broadcast


def _compile_fallback(expression: Expression) -> ColumnFunction:
    evaluate = expression.evaluate

    def per_record(batch: RecordBatch) -> List[Any]:
        return [evaluate(record) for record in batch.to_records()]

    return per_record


# Symbol-specialized binary kernels.  ``map(lambda a, b: a > b, ...)`` pays a
# Python frame per row; a comprehension with the operator inlined is several
# times cheaper and — because the record engine's lambdas evaluate both sides
# unconditionally — semantically identical, including for "and"/"or" (which
# return ``bool(a) and bool(b)``, not a short-circuited operand).
_BINARY_ZIP_KERNELS: dict = {
    "+": lambda lf, rf: lambda b: [x + y for x, y in zip(lf(b), rf(b))],
    "-": lambda lf, rf: lambda b: [x - y for x, y in zip(lf(b), rf(b))],
    "*": lambda lf, rf: lambda b: [x * y for x, y in zip(lf(b), rf(b))],
    "/": lambda lf, rf: lambda b: [x / y for x, y in zip(lf(b), rf(b))],
    "%": lambda lf, rf: lambda b: [x % y for x, y in zip(lf(b), rf(b))],
    ">": lambda lf, rf: lambda b: [x > y for x, y in zip(lf(b), rf(b))],
    ">=": lambda lf, rf: lambda b: [x >= y for x, y in zip(lf(b), rf(b))],
    "<": lambda lf, rf: lambda b: [x < y for x, y in zip(lf(b), rf(b))],
    "<=": lambda lf, rf: lambda b: [x <= y for x, y in zip(lf(b), rf(b))],
    "==": lambda lf, rf: lambda b: [x == y for x, y in zip(lf(b), rf(b))],
    "!=": lambda lf, rf: lambda b: [x != y for x, y in zip(lf(b), rf(b))],
    "and": lambda lf, rf: lambda b: [bool(x) and bool(y) for x, y in zip(lf(b), rf(b))],
    "or": lambda lf, rf: lambda b: [bool(x) or bool(y) for x, y in zip(lf(b), rf(b))],
}

_BINARY_CONST_RIGHT_KERNELS: dict = {
    "+": lambda lf, c: lambda b: [x + c for x in lf(b)],
    "-": lambda lf, c: lambda b: [x - c for x in lf(b)],
    "*": lambda lf, c: lambda b: [x * c for x in lf(b)],
    "/": lambda lf, c: lambda b: [x / c for x in lf(b)],
    "%": lambda lf, c: lambda b: [x % c for x in lf(b)],
    ">": lambda lf, c: lambda b: [x > c for x in lf(b)],
    ">=": lambda lf, c: lambda b: [x >= c for x in lf(b)],
    "<": lambda lf, c: lambda b: [x < c for x in lf(b)],
    "<=": lambda lf, c: lambda b: [x <= c for x in lf(b)],
    "==": lambda lf, c: lambda b: [x == c for x in lf(b)],
    "!=": lambda lf, c: lambda b: [x != c for x in lf(b)],
    # The non-constant side is still evaluated (the record engine's lambdas
    # evaluate both operands), only the per-row bool coercion is elided.
    "and": lambda lf, c: (
        (lambda b: [bool(x) for x in lf(b)]) if c else (lambda b: [False for _ in lf(b)])
    ),
    "or": lambda lf, c: (
        (lambda b: [True for _ in lf(b)]) if c else (lambda b: [bool(x) for x in lf(b)])
    ),
}

_BINARY_CONST_LEFT_KERNELS: dict = {
    "+": lambda c, rf: lambda b: [c + y for y in rf(b)],
    "-": lambda c, rf: lambda b: [c - y for y in rf(b)],
    "*": lambda c, rf: lambda b: [c * y for y in rf(b)],
    "/": lambda c, rf: lambda b: [c / y for y in rf(b)],
    "%": lambda c, rf: lambda b: [c % y for y in rf(b)],
    ">": lambda c, rf: lambda b: [c > y for y in rf(b)],
    ">=": lambda c, rf: lambda b: [c >= y for y in rf(b)],
    "<": lambda c, rf: lambda b: [c < y for y in rf(b)],
    "<=": lambda c, rf: lambda b: [c <= y for y in rf(b)],
    "==": lambda c, rf: lambda b: [c == y for y in rf(b)],
    "!=": lambda c, rf: lambda b: [c != y for y in rf(b)],
    "and": lambda c, rf: (
        (lambda b: [bool(y) for y in rf(b)]) if c else (lambda b: [False for _ in rf(b)])
    ),
    "or": lambda c, rf: (
        (lambda b: [True for _ in rf(b)]) if c else (lambda b: [bool(y) for y in rf(b)])
    ),
}


def _compile_binary(expression: BinaryExpression) -> ColumnFunction:
    symbol = expression.symbol
    left, right = expression.left, expression.right
    if symbol in _BINARY_ZIP_KERNELS:
        if type(right) is ConstantExpression:
            return _BINARY_CONST_RIGHT_KERNELS[symbol](
                compile_expression(left), right.value
            )
        if type(left) is ConstantExpression:
            return _BINARY_CONST_LEFT_KERNELS[symbol](
                left.value, compile_expression(right)
            )
        return _BINARY_ZIP_KERNELS[symbol](
            compile_expression(left), compile_expression(right)
        )
    left_fn = compile_expression(left)
    right_fn = compile_expression(right)
    op = expression.op

    def binary(batch: RecordBatch) -> List[Any]:
        return list(map(op, left_fn(batch), right_fn(batch)))

    return binary


def compile_expression(expression: Expression) -> ColumnFunction:
    """Compile an expression tree into a columnar evaluation closure."""
    kind = type(expression)
    if kind is AliasedExpression:
        return compile_expression(expression.inner)
    if kind is FieldExpression:
        return _compile_field(expression.name)
    if kind is ConstantExpression:
        return _compile_constant(expression.value)
    if kind is TimestampExpression:
        return lambda batch: batch.timestamps
    if kind is BinaryExpression:
        return _compile_binary(expression)
    if kind is UnaryExpression:
        operand = compile_expression(expression.operand)
        if expression.symbol == "not":
            # ``not bool(a)`` == ``not a`` for every value.
            return lambda batch: [not x for x in operand(batch)]
        op = expression.op

        def unary(batch: RecordBatch) -> List[Any]:
            return list(map(op, operand(batch)))

        return unary
    if kind is FunctionExpression:
        args = [compile_expression(arg) for arg in expression.args]
        func = expression.func
        if not args:
            return lambda batch: [func() for _ in range(len(batch))]

        def call(batch: RecordBatch) -> List[Any]:
            return list(map(func, *(arg(batch) for arg in args)))

        return call
    if kind is LambdaExpression:
        # A record-level UDF stays per-record, but the user callable is bound
        # directly — no ``evaluate`` dispatch per row.
        func = expression.func

        def per_record_udf(batch: RecordBatch) -> List[Any]:
            return [func(record) for record in batch.to_records()]

        return per_record_udf
    vectorizer = _VECTORIZERS.get(kind)
    if vectorizer is not None:
        return vectorizer(expression)
    # Plugin expression classes and any other subclass.
    return _compile_fallback(expression)


#: Registered columnar kernels for expression subclasses (e.g. the NebulaMEOS
#: spatial expressions); see :func:`register_vectorizer`.
_VECTORIZERS: Dict[type, Callable[[Expression], ColumnFunction]] = {}


def register_vectorizer(
    expression_type: type, factory: Callable[[Expression], ColumnFunction]
) -> None:
    """Register a columnar kernel for an :class:`Expression` subclass.

    ``factory`` receives the expression instance and returns a
    :data:`ColumnFunction` that must evaluate to exactly the same per-row
    values as calling ``expression.evaluate`` on each record.  Plugin packages
    (e.g. :mod:`repro.nebulameos.expressions`) call this at import time so
    their expressions stop falling back to per-record evaluation inside the
    batch runtime.  The registration is keyed on the exact type — subclasses
    that override ``evaluate`` register separately or keep the fallback.
    """
    _VECTORIZERS[expression_type] = factory
