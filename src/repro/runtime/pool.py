"""Persistent, reusable process worker pool.

The :mod:`repro.runtime.parallel` pool is per-execution: every ``execute``
pays fork + shared-memory export + plan compilation, which on short inputs
costs more than the partitioned work itself (the ``scaling`` section of
``BENCH_runtime.json`` documents exactly this).  :class:`WorkerPool` keeps
the forked workers **alive across executions** and amortizes all three:

* **fork once, reuse** — workers are forked lazily, on the first task that
  needs a context they don't know.  Installed contexts live in the
  module-global :data:`_POOL_CONTEXTS` registry *before* the fork, so
  children inherit compiled-plan closures and shared-memory mappings the
  same way the per-execution pool's children do — nothing is pickled in,
  and workers never attach shared memory by name (no resource-tracker
  double-unlink wart).  Installing a context a live worker doesn't know
  restarts that worker slot; the respawn inherits every current context.
* **compiled-plan cache** — each worker caches its compiled pipeline per
  context key (query + plan fingerprint + backend + batch size are all part
  of the key); a warm execution restores the pipeline's pristine operator
  state from a pickled snapshot instead of recompiling.
* **shared-memory block reuse** — columns-mode exports for replay sources
  are parent-owned and kept installed between executions, keyed by
  :func:`plan_fingerprint` and validated against the source's
  :class:`~repro.runtime.storage.SourceColumnCache` identity (rebuilt
  buffer or backend switch ⇒ rebuild + reinstall).  ``pool.close()`` (and a
  crash-safe ``atexit`` hook) unlinks every export, so ``/dev/shm`` stays
  clean even after ``os._exit`` worker crashes.

Fault handling: a dead worker is detected (liveness poll + pipe EOF),
retired and respawned without poisoning the pool.  Idempotent ``run`` tasks
are retried once on a fresh worker; a second death raises
:class:`concurrent.futures.process.BrokenProcessPool` like the
per-execution pool does.  Stateful shard tasks are never retried — the
shard is declared broken via :class:`~repro.errors.ServiceError`.  Three
optional hardening knobs (all duck-typed so the runtime layer stays
independent of :mod:`repro.service`): ``respawn_policy`` (a
:class:`~repro.service.retry.RestartPolicy`) is a crash-loop breaker — once
worker deaths exceed its budget the pool raises ``BrokenProcessPool``
instead of respawning forever; ``respawn_backoff`` (a
:class:`~repro.service.retry.RetryPolicy`) sleeps between a death and the
respawn so a crash loop cannot spin hot; ``task_timeout_s`` is a watchdog
on every pipe reply — a worker that stops answering is retired like a dead
one instead of hanging the caller.

The pool also hosts **server shards**: long-lived worker-resident batch
pipelines (:meth:`WorkerPool.open_shards`) that the service layer's
``QueryRunner`` feeds micro-batches continuously.  Shard state stays in the
worker between feeds; checkpoint barriers snapshot it over the same task
protocol.

Fingerprint caveat: plan identity is *structural* (node descriptions,
expression reprs, UDF/factory qualnames).  Two plans that differ only in
values captured by a closure of the same function fingerprint identically —
rebuilding the same catalog query must hit warm, so object identity cannot
participate.  Data identity is covered separately by the source-cache
validation above.
"""

from __future__ import annotations

import atexit
import os
import pickle
import traceback
from time import monotonic
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.runtime.batch import RecordBatch
from repro.runtime.columns import active_backend, get_numpy
from repro.runtime.operators import (
    build_batch_pipeline,
    iter_operators,
    swap_buffering_sinks,
)
from repro.runtime.parallel import (
    _build_columns_context,
    _flush_inherited_buffers,
    account_columns_input,
    build_worker_context,
    merge_worker_payloads,
    process_pool_available,
)
from repro.streaming.engine import abort_execution
from repro.streaming.metrics import MetricsCollector, adaptivity_stats_of
from repro.streaming.plan import FlatMapNode, MapNode, OperatorNode
from repro.streaming.record import Record
from repro.testing import faults as _faults


# -- fork-inherited state -----------------------------------------------------------

# Contexts installed before a worker forks; children inherit the dict.  The
# per-execution pool uses a single slot (`parallel._WORKER_CONTEXT`); the
# persistent pool needs many live at once, keyed so workers can tell them
# apart across executions.
_POOL_CONTEXTS: Dict[str, Any] = {}

# Parent ends of every live worker pipe.  A freshly forked child inherits
# copies of these descriptors; if it kept them open, a sibling worker's
# death would never surface as EOF on the parent's pipe.  Children close
# every registered connection first thing in their main loop.
_POOL_PARENT_CONNS: List[Any] = []


class _WorkerDied(Exception):
    """Internal: the worker behind a pipe is gone (EOF or liveness check)."""


class ShardContext:
    """A service shard's inheritable compile recipe (engine + linear plan)."""

    __slots__ = ("engine", "plan", "query_name", "export")

    def __init__(self, engine, plan, query_name: str) -> None:
        self.engine = engine
        self.plan = plan
        self.query_name = query_name
        self.export = None  # uniform context shape for eviction


# -- worker side --------------------------------------------------------------------


class _CompiledPipeline:
    """A worker's cached compiled pipeline for one context key.

    ``reset()`` restores every stateful operator to its pristine
    post-compile state (from a pickled snapshot taken before the first run)
    and empties the buffering-sink buffers, so a warm re-execution is
    indistinguishable from a fresh compile.  Stateful operators snapshot a
    non-``None`` dict even when empty (the checkpoint contract), so the
    initial snapshot covers every position that can ever hold state.
    """

    __slots__ = ("stages", "operators", "sink_buffers", "_initial")

    def __init__(self, context) -> None:
        self.stages, self.operators, self.sink_buffers = context.compile_pipeline()
        states = []
        for operator in iter_operators(self.stages):
            state = operator.checkpoint()
            if state is not None:
                states.append((operator.position, state))
        self._initial = pickle.dumps(states, protocol=pickle.HIGHEST_PROTOCOL)

    def reset(self) -> None:
        states = dict(pickle.loads(self._initial))
        for operator in iter_operators(self.stages):
            state = states.get(operator.position)
            if state is not None:
                operator.restore(state)
        for buffer in self.sink_buffers:
            del buffer[:]


class _WorkerShard:
    """One long-lived shard pipeline resident in a worker process."""

    __slots__ = ("context", "stages", "operators", "sink_buffers")

    def __init__(self, context: ShardContext) -> None:
        engine = context.engine
        operators, _, entry_points = engine.compile(context.plan)
        if entry_points:
            raise ServiceError("sharded service pipelines must be linear")
        operators, sink_buffers = swap_buffering_sinks(operators)
        self.context = context
        self.operators = operators
        self.sink_buffers = sink_buffers
        self.stages = build_batch_pipeline(operators, (), fuse=engine.fuse)

    def _payload(self, out: List[Record], local: MetricsCollector) -> Dict[str, Any]:
        sinks = [list(buffer) for buffer in self.sink_buffers]
        for buffer in self.sink_buffers:
            del buffer[:]
        return {
            "records": out,
            "sinks": sinks,
            "operator_events": local.operator_events,
            "operator_seconds": local.operator_seconds,
            "pid": os.getpid(),
        }

    def feed(self, records: List[Record]) -> Dict[str, Any]:
        engine = self.context.engine
        local = MetricsCollector(self.context.query_name)
        out: List[Record] = []
        batch = engine._run_through(
            self.stages, RecordBatch.from_records(records), 0, local
        )
        if batch is not None and len(batch):
            out.extend(batch.to_records())
        return self._payload(out, local)

    def flush(self) -> Dict[str, Any]:
        engine = self.context.engine
        local = MetricsCollector(self.context.query_name)
        out: List[Record] = []
        engine._flush_stages(self.stages, local, out)
        return self._payload(out, local)

    def checkpoint(self) -> List[Tuple[int, Any]]:
        states = []
        for operator in iter_operators(self.stages):
            state = operator.checkpoint()
            if state is not None:
                states.append((operator.position, state))
        return states

    def restore(self, states: Sequence[Tuple[int, Any]]) -> None:
        positions = {operator.position for operator in iter_operators(self.stages)}
        unknown = sorted(pos for pos, _ in states if pos not in positions)
        if unknown:
            raise ServiceError(
                f"checkpoint references unknown operator positions {unknown}"
            )
        by_position = dict(states)
        for operator in iter_operators(self.stages):
            state = by_position.get(operator.position)
            if state is not None:
                operator.restore(state)


def _dispatch(task, compiled: Dict[str, _CompiledPipeline], shards: Dict[Tuple[str, int], _WorkerShard]):
    kind = task[0]
    if kind == "ping":
        return os.getpid()
    if kind == "run":
        _, key, index = task
        context = _POOL_CONTEXTS.get(key)
        if context is None:
            raise RuntimeError(
                f"worker {os.getpid()} was forked before context {key!r} existed"
            )
        pipeline = compiled.get(key)
        cache_hit = pipeline is not None
        if pipeline is None:
            pipeline = compiled[key] = _CompiledPipeline(context)
        else:
            pipeline.reset()
        local = MetricsCollector(context.query_name, profile=context.engine.profile)
        out: List[Record] = []
        context.drive(index, pipeline.stages, local, out)
        return {
            "records": out,
            "sinks": [list(buffer) for buffer in pipeline.sink_buffers],
            "operator_events": local.operator_events,
            "operator_seconds": local.operator_seconds,
            "adaptivity": adaptivity_stats_of(pipeline.operators),
            "pid": os.getpid(),
            "compiled_cache_hit": cache_hit,
        }
    if kind == "shard_open":
        _, key, index = task
        context = _POOL_CONTEXTS.get(key)
        if context is None:
            raise RuntimeError(
                f"worker {os.getpid()} was forked before shard context {key!r} existed"
            )
        shards[(key, index)] = _WorkerShard(context)
        return os.getpid()
    if kind == "shard_feed":
        _, key, index, records = task
        return shards[(key, index)].feed(records)
    if kind == "shard_flush":
        _, key, index = task
        return shards[(key, index)].flush()
    if kind == "shard_checkpoint":
        _, key, index = task
        return shards[(key, index)].checkpoint()
    if kind == "shard_restore":
        _, key, index, states = task
        shards[(key, index)].restore(states)
        return True
    if kind == "shard_close":
        _, key, index = task
        shards.pop((key, index), None)
        return True
    raise RuntimeError(f"unknown pool task {task[0]!r}")


def _pool_worker_main(conn) -> None:
    """A pool worker's task loop (child side of one duplex pipe)."""
    # Drop inherited copies of every *other* worker's pipe end (and our own
    # parent end): leaked descriptors would mask sibling deaths from the
    # parent's EOF detection.
    for other in list(_POOL_PARENT_CONNS):
        try:
            other.close()
        except Exception:
            pass
    del _POOL_PARENT_CONNS[:]
    compiled: Dict[str, _CompiledPipeline] = {}
    shards: Dict[Tuple[str, int], _WorkerShard] = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task[0] == "exit":
            return
        try:
            if _faults.ACTIVE is not None:
                _faults.ACTIVE.hit("pool.worker.task", kind=task[0])
            reply = ("ok", _dispatch(task, compiled, shards))
        except BaseException as exc:  # ship the failure, keep serving
            detail = traceback.format_exc()
            try:
                pickle.dumps(exc)
                reply = ("err", exc, detail)
            except Exception:
                reply = ("err", RuntimeError(f"{type(exc).__name__}: {exc}"), detail)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# -- parent side --------------------------------------------------------------------


class _WorkerSlot:
    __slots__ = ("index", "process", "conn", "known_keys", "shard_keys")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.known_keys: set = set()
        self.shard_keys: set = set()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _ContextEntry:
    __slots__ = ("key", "context", "fingerprint", "cache", "pinned")

    def __init__(self, key, context, fingerprint, cache=None, pinned=False) -> None:
        self.key = key
        self.context = context
        self.fingerprint = fingerprint
        self.cache = cache
        self.pinned = pinned


class ShardGroup:
    """Parent-side handle on a set of worker-resident shard pipelines."""

    def __init__(self, pool: "WorkerPool", key: str, slots: List[_WorkerSlot]) -> None:
        self._pool = pool
        self._key = key
        self._slots = slots
        self.closed = False

    @property
    def num_shards(self) -> int:
        return len(self._slots)

    def _calls(self, tasks: List[Tuple[int, tuple]]) -> List[Any]:
        if self.closed:
            raise ServiceError("shard group is closed")
        return self._pool._shard_calls(
            [(self._slots[index], task) for index, task in tasks]
        )

    def feed(self, per_shard: List[Optional[List[Record]]]) -> List[Optional[Dict[str, Any]]]:
        """Feed each shard its micro-batch slice (``None``/empty = skip)."""
        tasks = [
            (i, ("shard_feed", self._key, i, records))
            for i, records in enumerate(per_shard)
            if records
        ]
        replies = self._calls(tasks)
        out: List[Optional[Dict[str, Any]]] = [None] * len(per_shard)
        for (i, _), reply in zip(tasks, replies):
            out[i] = reply
        return out

    def flush(self) -> List[Dict[str, Any]]:
        return self._calls(
            [(i, ("shard_flush", self._key, i)) for i in range(len(self._slots))]
        )

    def checkpoint(self) -> List[List[Tuple[int, Any]]]:
        return self._calls(
            [(i, ("shard_checkpoint", self._key, i)) for i in range(len(self._slots))]
        )

    def restore(self, per_shard_states: Sequence[Sequence[Tuple[int, Any]]]) -> None:
        if len(per_shard_states) != len(self._slots):
            raise ServiceError(
                f"checkpoint has {len(per_shard_states)} shards, group has {len(self._slots)}"
            )
        self._calls(
            [
                (i, ("shard_restore", self._key, i, list(states)))
                for i, states in enumerate(per_shard_states)
            ]
        )

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for i, slot in enumerate(self._slots):
            if slot.alive:
                try:
                    self._pool._shard_calls([(slot, ("shard_close", self._key, i))])
                except Exception:
                    pass
            slot.shard_keys.discard((self._key, i))
        self._pool.evict(self._key)


class WorkerPool:
    """A persistent fork-based worker pool shared across executions.

    Pass it to :class:`~repro.runtime.engine.BatchExecutionEngine` (or
    :class:`~repro.streaming.engine.StreamExecutionEngine`) as
    ``worker_pool`` together with ``parallelism="process"``; the service
    layer shares one pool across all registered queries.  Close it
    explicitly (``close()``); an ``atexit`` hook covers crashed sessions so
    ``/dev/shm`` exports can't outlive the parent.
    """

    def __init__(
        self,
        workers: int,
        max_contexts: int = 8,
        respawn_policy=None,
        respawn_backoff=None,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        if not process_pool_available():
            raise RuntimeError(
                "persistent worker pools require the fork start method"
            )
        self.respawn_policy = respawn_policy  # RestartPolicy: crash-loop breaker
        self.respawn_backoff = respawn_backoff  # RetryPolicy: sleep between respawns
        self.task_timeout_s = (
            None if task_timeout_s is None else max(0.1, float(task_timeout_s))
        )
        self._respawn_history = (
            respawn_policy.new_history() if respawn_policy is not None else None
        )
        self._respawn_delay: Optional[float] = None
        self._slots = [_WorkerSlot(i) for i in range(int(workers))]
        self._entries: Dict[str, _ContextEntry] = {}
        self._by_fingerprint: Dict[str, str] = {}
        self._lru: List[str] = []
        self._max_contexts = max(1, int(max_contexts))
        self._next_key = 0
        self.closed = False
        self.stats = {
            "cold_executions": 0,
            "warm_executions": 0,
            "respawns": 0,
            "compiled_cache_hits": 0,
        }
        self.last_execution: Optional[Dict[str, Any]] = None
        atexit.register(self._close_at_exit)

    # -- introspection ----------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._slots)

    def worker_pids(self) -> List[int]:
        return [slot.process.pid for slot in self._slots if slot.alive]

    # -- worker lifecycle -------------------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> None:
        import multiprocessing

        mp_context = multiprocessing.get_context("fork")
        parent_conn, child_conn = mp_context.Pipe(duplex=True)
        _flush_inherited_buffers(())
        _POOL_PARENT_CONNS.append(parent_conn)
        process = mp_context.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.known_keys = set(_POOL_CONTEXTS)
        slot.shard_keys = set()
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.hit("pool.spawn", slot=slot.index)

    def _note_respawn(self) -> None:
        """Count one worker death; trip the crash-loop breaker past budget."""
        self.stats["respawns"] += 1
        if self.respawn_policy is not None and not self.respawn_policy.admit(
            self._respawn_history
        ):
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool(
                "pool workers are crash-looping "
                f"(budget: {self.respawn_policy.describe()})"
            )

    def _respawn(self, slot: _WorkerSlot) -> None:
        self._retire(slot)
        if self.respawn_backoff is not None:
            self._respawn_delay = self.respawn_backoff.next_delay(self._respawn_delay)
            self.respawn_backoff.sleep(self._respawn_delay)
        self._spawn(slot)

    def _retire(self, slot: _WorkerSlot, graceful: bool = False) -> None:
        conn, process = slot.conn, slot.process
        slot.conn = None
        slot.process = None
        slot.known_keys = set()
        slot.shard_keys = set()
        if conn is not None:
            try:
                _POOL_PARENT_CONNS.remove(conn)
            except ValueError:
                pass
            try:
                conn.close()
            except Exception:
                pass
        if process is None:
            return
        if graceful:
            process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)

    def _ensure(self, slot: _WorkerSlot, keys: set) -> None:
        """Make ``slot`` a live worker that knows every key in ``keys``."""
        if not slot.alive:
            if slot.process is not None:  # died since we last used it
                self._note_respawn()
            self._respawn(slot)
            return
        if keys <= slot.known_keys:
            return
        if slot.shard_keys:
            # the worker must restart to inherit the new context, but it
            # hosts live shard pipelines — migrate them across the restart
            # (checkpoint over the pipe, respawn, re-open, restore).  Between
            # feeds the shards' sink buffers are empty (every feed/flush
            # ships and clears them), so operator state is the whole shard.
            migrated = sorted(slot.shard_keys)
            states = self._shard_calls(
                [(slot, ("shard_checkpoint", key, index)) for key, index in migrated]
            )
            self._retire(slot)
            self._spawn(slot)
            self._shard_calls(
                [(slot, ("shard_open", key, index)) for key, index in migrated]
            )
            self._shard_calls(
                [
                    (slot, ("shard_restore", key, index, list(state)))
                    for (key, index), state in zip(migrated, states)
                ]
            )
            slot.shard_keys = set(migrated)
            return
        self._retire(slot)
        self._spawn(slot)

    def warm_up(self) -> None:
        """Eagerly fork every worker (e.g. before entering an event loop, so
        children don't inherit sockets created later)."""
        self._check_open()
        for slot in self._slots:
            if not slot.alive:
                self._retire(slot)
                self._spawn(slot)

    def _recv(self, slot: _WorkerSlot):
        conn = slot.conn
        deadline = (
            monotonic() + self.task_timeout_s if self.task_timeout_s is not None else None
        )
        while True:
            try:
                if conn.poll(0.05):
                    return conn.recv()
            except (EOFError, OSError):
                raise _WorkerDied()
            if deadline is not None and monotonic() > deadline:
                # watchdog: a worker that stops replying is as gone as a dead
                # one — retire it so the caller's retry path can respawn
                self._retire(slot)
                raise _WorkerDied()
            if not slot.alive:
                # drain a reply the worker managed to write before dying
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise _WorkerDied()

    # -- context registry -------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("worker pool is closed")

    def install_context(
        self, context, fingerprint: Optional[str] = None, cache=None, pinned: bool = False
    ) -> str:
        """Register a context for inheritance by (re)forked workers.

        Reusable contexts carry a ``fingerprint`` (warm lookups) and the
        source column ``cache`` they were built from (validity check);
        ``pinned`` contexts (shards) are exempt from LRU trimming.
        """
        self._check_open()
        key = f"ctx-{self._next_key}"
        self._next_key += 1
        if fingerprint is not None:
            stale = self._by_fingerprint.pop(fingerprint, None)
            if stale is not None:
                self.evict(stale)
            self._by_fingerprint[fingerprint] = key
        _POOL_CONTEXTS[key] = context
        self._entries[key] = _ContextEntry(key, context, fingerprint, cache, pinned)
        self._lru.append(key)
        self._trim(protect=key)
        return key

    def lookup(self, fingerprint: str) -> Optional[_ContextEntry]:
        key = self._by_fingerprint.get(fingerprint)
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is not None:
            try:
                self._lru.remove(key)
            except ValueError:
                pass
            self._lru.append(key)
        return entry

    def evict(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        _POOL_CONTEXTS.pop(key, None)
        try:
            self._lru.remove(key)
        except ValueError:
            pass
        if entry is None:
            return
        if entry.fingerprint is not None:
            if self._by_fingerprint.get(entry.fingerprint) == key:
                del self._by_fingerprint[entry.fingerprint]
        export = getattr(entry.context, "export", None)
        if export is not None:
            export.close()

    def _trim(self, protect: Optional[str] = None) -> None:
        evictable = [
            key
            for key in self._lru
            if key != protect and not self._entries[key].pinned
        ]
        while len(self._entries) > self._max_contexts and evictable:
            self.evict(evictable.pop(0))

    # -- task dispatch ----------------------------------------------------------

    def run_partitions(self, key: str, num_partitions: int) -> List[Dict[str, Any]]:
        """Run partitions 0..N-1 of an installed execution context.

        ``run`` tasks are idempotent (operator state is reset per run, shm
        views are read-only), so a worker death mid-task is retried once on
        a respawned worker before the pool gives up.
        """
        self._check_open()
        tasks = [("run", key, index) for index in range(num_partitions)]
        return self._map_tasks(tasks, {key}, retries=1)

    def _map_tasks(self, tasks, keys: set, retries: int) -> List[Any]:
        results: List[Any] = [None] * len(tasks)
        pending = list(enumerate(tasks))
        attempts = 0
        while pending:
            failed: List[Tuple[int, tuple]] = []
            assignments: List[List[Tuple[int, tuple]]] = [[] for _ in self._slots]
            for j, item in enumerate(pending):
                assignments[j % len(self._slots)].append(item)
            active: List[Tuple[_WorkerSlot, List[Tuple[int, tuple]]]] = []
            for slot, items in zip(self._slots, assignments):
                if not items:
                    continue
                try:
                    self._ensure(slot, keys)
                    for _, task in items:
                        slot.conn.send(task)
                except (OSError, ValueError, BrokenPipeError):
                    self._retire(slot)
                    failed.extend(items)
                    continue
                active.append((slot, items))
            remote_error: Optional[BaseException] = None
            remote_detail = ""
            for slot, items in active:
                for position, (i, _task) in enumerate(items):
                    try:
                        reply = self._recv(slot)
                    except _WorkerDied:
                        self._retire(slot)
                        failed.extend(items[position:])
                        break
                    if reply[0] == "err":
                        if remote_error is None:
                            remote_error = reply[1]
                            remote_detail = reply[2]
                    else:
                        results[i] = reply[1]
            if remote_error is not None:
                # a real (in-worker) failure, not a crash: re-raise it after
                # every outstanding reply is drained so no stale replies can
                # poison the next dispatch
                raise remote_error from RuntimeError(
                    f"pool worker failed:\n{remote_detail}"
                )
            if failed:
                attempts += 1
                self._note_respawn()
                if attempts > retries:
                    from concurrent.futures.process import BrokenProcessPool

                    raise BrokenProcessPool(
                        "a pool worker died while running a task (retry exhausted)"
                    )
            pending = failed
        return results

    def _shard_calls(self, calls: List[Tuple[_WorkerSlot, tuple]]) -> List[Any]:
        """Dispatch stateful shard tasks (no retry; death breaks the shard).

        Tasks run in waves of at most one outstanding task per worker so a
        large payload send can never deadlock against an unread reply.
        """
        self._check_open()
        results: List[Any] = [None] * len(calls)
        queues: Dict[int, List[Tuple[int, tuple]]] = {}
        slots: Dict[int, _WorkerSlot] = {}
        for i, (slot, task) in enumerate(calls):
            queues.setdefault(slot.index, []).append((i, task))
            slots[slot.index] = slot
        while any(queues.values()):
            wave = []
            for index, queue in queues.items():
                if not queue:
                    continue
                slot = slots[index]
                i, task = queue.pop(0)
                try:
                    if not slot.alive:
                        raise _WorkerDied()
                    slot.conn.send(task)
                except (_WorkerDied, OSError, ValueError, BrokenPipeError) as exc:
                    self._retire(slot)
                    raise ServiceError(
                        f"shard worker {index} died; its operator state is lost"
                    ) from exc
                wave.append((slot, i))
            remote_error: Optional[BaseException] = None
            died: Optional[int] = None
            for slot, i in wave:
                try:
                    reply = self._recv(slot)
                except _WorkerDied:
                    self._retire(slot)
                    died = slot.index
                    continue
                if reply[0] == "err":
                    if remote_error is None:
                        remote_error = reply[1]
                else:
                    results[i] = reply[1]
            if died is not None:
                raise ServiceError(
                    f"shard worker {died} died; its operator state is lost"
                )
            if remote_error is not None:
                raise remote_error
        return results

    # -- server shards ----------------------------------------------------------

    def open_shards(self, query_name: str, engine, plan, num_shards: int) -> ShardGroup:
        """Open ``num_shards`` long-lived shard pipelines on the pool.

        Shards are assigned round-robin over the worker slots and stay
        resident (operator state included) until the group is closed.
        """
        self._check_open()
        if num_shards < 1:
            raise ServiceError("a shard group needs at least one shard")
        context = ShardContext(engine, plan, query_name)
        key = self.install_context(context, pinned=True)
        slots = [self._slots[i % len(self._slots)] for i in range(num_shards)]
        for slot in dict.fromkeys(slots):
            self._ensure(slot, {key})
        group = ShardGroup(self, key, slots)
        try:
            group._calls([(i, ("shard_open", key, i)) for i in range(num_shards)])
        except BaseException:
            self.evict(key)
            raise
        for i, slot in enumerate(slots):
            slot.shard_keys.add((key, i))
        return group

    # -- shutdown ---------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and unlink every pooled shared-memory export."""
        if self.closed:
            return
        self.closed = True
        try:
            atexit.unregister(self._close_at_exit)
        except Exception:
            pass
        for slot in self._slots:
            if slot.alive:
                try:
                    slot.conn.send(("exit",))
                except Exception:
                    pass
        for slot in self._slots:
            self._retire(slot, graceful=True)
        for key in list(self._entries):
            self.evict(key)

    def _close_at_exit(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# -- plan fingerprinting ------------------------------------------------------------


def plan_fingerprint(engine, plan, query_name: str) -> str:
    """A structural identity for (query, plan, backend, engine config).

    Stable across plan *rebuilds* (``QUERY_CATALOG[...].build(...)`` creates
    fresh node/expression objects every call — warm pool hits require value
    identity, not object identity), while distinguishing structurally
    different plans: node kinds, expression reprs, map assignment exprs,
    UDF/factory qualnames, plus every engine knob that changes compilation
    or batching.  See the module docstring for the closure caveat.
    """
    parts = [
        f"q={query_name}",
        f"backend={active_backend()}",
        f"batch={engine.batch_size}",
        f"parts={engine.num_partitions}",
        f"key={engine.partition_key}",
        f"fuse={engine.fuse}",
        f"profile={engine.profile}",
        f"adaptive={engine.adaptive_batch}",
    ]
    _fingerprint_nodes(plan, parts)
    return "|".join(parts)


def _fingerprint_nodes(plan, parts: List[str]) -> None:
    for node in plan.nodes:
        if isinstance(node, MapNode):
            parts.append(f"map({node.assignments!r})")
        elif isinstance(node, FlatMapNode):
            func = node.func
            parts.append(
                "flat_map("
                f"{getattr(func, '__module__', '')}.{getattr(func, '__qualname__', 'fn')})"
            )
        elif isinstance(node, OperatorNode):
            factory = node.factory
            parts.append(
                f"{node.describe()}:"
                f"{getattr(factory, '__module__', '')}.{getattr(factory, '__qualname__', 'f')}"
            )
        else:
            parts.append(node.describe())
        right = getattr(node, "right_plan", None)
        if right is not None:
            parts.append("[")
            _fingerprint_nodes(right, parts)
            parts.append("]")


# -- pooled execution ---------------------------------------------------------------


def _warm_entry(pool: WorkerPool, engine, plan, fingerprint: str) -> Optional[_ContextEntry]:
    """The installed reusable context for this plan, if still valid.

    The fingerprint covers structure and config; data validity is the
    source cache identity — a rebuilt replay buffer or a backend switch
    rebuilds the cache object, invalidating the export.
    """
    from repro.runtime.storage import SourceColumnCache

    entry = pool.lookup(fingerprint)
    if entry is None:
        return None
    cache = SourceColumnCache.of(plan.source_node.source)
    if entry.cache is not cache:
        pool.evict(entry.key)
        return None
    return entry


def execute_process_pooled(engine, plan, query_name: str, first_compiled, split: int):
    """Run a partitioned plan on the engine's persistent worker pool.

    Mirrors :func:`~repro.runtime.parallel.execute_process_partitioned` end
    to end, but forks nothing on the warm path: a linear numpy replay plan
    whose fingerprint and source cache match an installed context skips
    scatter, export and worker compilation entirely.  Everything else
    installs a transient context (workers restart to inherit it — the cost
    of the per-execution pool, no worse) that is evicted afterwards.
    """
    pool: WorkerPool = engine.worker_pool
    num_partitions = engine.num_partitions
    metrics = MetricsCollector(query_name, profile=engine.profile, bus=engine.metric_bus)
    operators, sinks, entry_points = first_compiled
    bus = metrics.bus
    if bus is not None:
        bus.set_gauge("batch_size", lambda: engine.batch_size)
    metrics.start()

    source = plan.source_node.source
    reusable = (
        split == 0
        and not entry_points
        and hasattr(source, "records_list")
        and not engine.adaptive_batch
        and get_numpy() is not None
    )
    transient: Optional[str] = None
    key: Optional[str] = None
    try:
        warm = False
        if reusable:
            fingerprint = plan_fingerprint(engine, plan, query_name)
            entry = _warm_entry(pool, engine, plan, fingerprint)
            if entry is not None:
                warm = True
                key = entry.key
                context = entry.context
                account_columns_input(engine, plan, metrics)
                bounds = context.export.bounds
                partition_rows = [
                    bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)
                ]
            else:
                from repro.runtime.storage import SourceColumnCache

                context, partition_rows = _build_columns_context(
                    engine, plan, query_name, metrics
                )
                key = pool.install_context(
                    context,
                    fingerprint,
                    cache=SourceColumnCache.of(plan.source_node.source),
                )
        else:
            context, partition_rows = build_worker_context(
                engine, plan, query_name, metrics, first_compiled, split
            )
            key = transient = pool.install_context(context)
        if bus is not None:
            bus.observe_partition_rows(partition_rows)
        _flush_inherited_buffers(sinks)
        payloads = pool.run_partitions(key, num_partitions)
        pool.stats["warm_executions" if warm else "cold_executions"] += 1
        cache_hits = sum(1 for payload in payloads if payload.get("compiled_cache_hit"))
        pool.stats["compiled_cache_hits"] += cache_hits
        pool.last_execution = {
            "key": key,
            "warm": warm,
            "mode": context.mode,
            "compiled_cache_hits": cache_hits,
            "partitions": num_partitions,
        }
        engine.last_parallel_mode = context.mode
    except BaseException:
        abort_execution(metrics, sinks)
        # a failed execution must not pin its export: evict the context (and
        # unlink its shm) whether it was freshly installed or a warm hit
        if key is not None and transient is None and not pool.closed:
            pool.evict(key)
        raise
    finally:
        if transient is not None:
            pool.evict(transient)
    return merge_worker_payloads(
        engine, plan, metrics, payloads, sinks, operators, split, num_partitions
    )
