"""Command-line interface.

A small operational front-end so the library can be driven without writing
code — the rough equivalent of NebulaStream's client tooling for this
reproduction:

* ``python -m repro.cli dataset``   — generate the SNCB dataset as JSON lines.
* ``python -m repro.cli run Q3``    — run one catalog query, print alerts + metrics.
* ``python -m repro.cli top Q3``    — live terminal dashboard while a query runs.
* ``python -m repro.cli bench Q1``  — record vs micro-batch throughput on one query.
* ``python -m repro.cli report``    — the paper-vs-measured throughput table.
* ``python -m repro.cli figures``   — regenerate the Figure 2 / Figure 3 GeoJSON layers.
* ``python -m repro.cli queries``   — list the catalog queries.

``run`` (and ``top``) accept live-observability flags: ``--metrics-out`` for
NDJSON snapshots, ``--live`` for the in-terminal dashboard, and
``--adaptive-batch`` to let the snapshot feedback loop resize micro-batches.

The service layer adds two commands:

* ``python -m repro.cli serve Q1 Q2``  — long-running server: one TCP NDJSON
  feed fanned out to every registered query, with backpressure watermarks and
  optional barrier checkpoints (``--checkpoint-dir`` / ``--resume``).
* ``python -m repro.cli feed --port N`` — send scenario (or NDJSON file)
  events to a running server, optionally paced with ``--eps``.

All long-running commands (``run --live``, ``top``, ``serve``) shut down
gracefully on SIGINT/SIGTERM: metrics snapshots are flushed and sinks closed
before exiting.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
from typing import List, Optional

from repro.errors import PlanError, ServiceError, ShutdownSignal
from repro.queries import QUERY_CATALOG
from repro.sncb.scenario import Scenario, ScenarioConfig
from repro.streaming.engine import StreamExecutionEngine


@contextlib.contextmanager
def _graceful_signals():
    """Convert SIGINT/SIGTERM into :class:`ShutdownSignal` while active.

    The default SIGTERM disposition kills the process without unwinding the
    stack — snapshot writers and file sinks would be left unflushed.  Raising
    instead routes shutdown through the engines' abort path (final metrics
    snapshot, closed sinks) and the CLI's ``finally`` blocks.
    """

    def _raise(signum, frame):
        raise ShutdownSignal(signum, signal.Signals(signum).name)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _raise)
        except ValueError:  # not the main thread (e.g. pytest plugins)
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trains", type=int, default=6, help="number of simulated trains")
    parser.add_argument("--duration", type=float, default=3600.0, help="simulated seconds")
    parser.add_argument("--interval", type=float, default=5.0, help="sensor sampling interval (s)")
    parser.add_argument("--seed", type=int, default=42)


def _add_batch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch-size", type=int, default=256, help="rows per micro-batch")
    parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="key-partitioned parallel pipelines (batch mode only)",
    )
    parser.add_argument(
        "--partition-key",
        type=str,
        default="device_id",
        help="record field to hash partitions on (map-derived keys such as "
        "Q4's cell_id re-hash after the producing stage)",
    )
    parser.add_argument(
        "--parallelism",
        choices=["thread", "process"],
        default="thread",
        help="partition scheduler for --partitions > 1: 'thread' shares one "
        "GIL-bound interpreter, 'process' forks one worker per partition and "
        "ships typed columns through shared memory (true multi-core; falls "
        "back to threads where fork is unavailable)",
    )
    parser.add_argument(
        "--batch-backend",
        choices=["auto", "numpy", "python"],
        default=None,
        help="column backend for the batch runtime: typed numpy arrays "
        "(default when numpy is importable) or the pure-Python lists "
        "(also selectable via REPRO_BATCH_BACKEND)",
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--execution-mode",
        choices=["record", "batch"],
        default="record",
        help="record-at-a-time pipeline or vectorized micro-batch runtime",
    )
    _add_batch_arguments(parser)


def _add_metrics_arguments(parser: argparse.ArgumentParser, live_flag: bool = True) -> None:
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write live metrics snapshots as NDJSON to this file ('-' for stdout)",
    )
    parser.add_argument(
        "--metrics-interval-events",
        type=int,
        default=1000,
        help="snapshot after this many ingested events",
    )
    parser.add_argument(
        "--metrics-interval-s",
        type=float,
        default=0.5,
        help="also snapshot whenever this much wall-clock time elapsed",
    )
    if live_flag:
        parser.add_argument(
            "--live",
            action="store_true",
            help="redraw a terminal dashboard on every snapshot (plain ANSI; "
            "sequential frames when output is not a TTY)",
        )
    parser.add_argument(
        "--adaptive-batch",
        action="store_true",
        help="let the snapshot feedback loop resize micro-batches between "
        "--batch-min and --batch-max toward --latency-target-ms (batch mode)",
    )
    parser.add_argument("--batch-min", type=int, default=32, help="adaptive batch floor")
    parser.add_argument("--batch-max", type=int, default=4096, help="adaptive batch ceiling")
    parser.add_argument(
        "--latency-target-ms",
        type=float,
        default=5.0,
        help="windowed p95 latency target for --adaptive-batch",
    )


def _scenario_from(args: argparse.Namespace) -> Scenario:
    return Scenario(
        ScenarioConfig(
            num_trains=args.trains,
            duration_s=args.duration,
            interval_s=args.interval,
            seed=args.seed,
        )
    )


def cmd_queries(_: argparse.Namespace) -> int:
    for info in QUERY_CATALOG.values():
        print(f"{info.query_id}  [{info.category:10}] {info.title} — {info.description}")
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    stream = open(args.output, "w") if args.output else sys.stdout
    try:
        for event in scenario.events:
            stream.write(json.dumps(event) + "\n")
    finally:
        if args.output:
            stream.close()
            print(f"wrote {len(scenario.events)} events to {args.output}")
    return 0


def _apply_backend(args: argparse.Namespace) -> str:
    """Apply ``--batch-backend`` (when given) and return the active backend."""
    from repro.runtime import columns

    requested = getattr(args, "batch_backend", None)
    if requested is not None:
        columns.set_backend(requested)
    return columns.active_backend()


def _engine_from(args: argparse.Namespace, metric_bus=None) -> StreamExecutionEngine:
    _apply_backend(args)
    return StreamExecutionEngine(
        execution_mode=getattr(args, "execution_mode", "record"),
        batch_size=getattr(args, "batch_size", 256),
        num_partitions=getattr(args, "partitions", 1),
        partition_key=getattr(args, "partition_key", "device_id"),
        metric_bus=metric_bus,
        adaptive_batch=getattr(args, "adaptive_batch", False),
        parallelism=getattr(args, "parallelism", "thread"),
    )


def _metric_bus_from(args: argparse.Namespace):
    """A :class:`MetricBus` when any observability flag asks for one, else None."""
    wanted = (
        getattr(args, "metrics_out", None)
        or getattr(args, "live", False)
        or getattr(args, "adaptive_batch", False)
    )
    if not wanted:
        return None
    from repro.streaming.metricbus import MetricBus

    return MetricBus(
        interval_events=args.metrics_interval_events,
        interval_s=args.metrics_interval_s,
    )


def _attach_consumers(args: argparse.Namespace, bus, engine):
    """Subscribe the requested consumers; returns (writer, dashboard, sizer)."""
    writer = dashboard = sizer = None
    if args.metrics_out:
        from repro.streaming.metricbus import SnapshotWriter

        target = sys.stdout if args.metrics_out == "-" else args.metrics_out
        writer = bus.subscribe(SnapshotWriter(target))
    if getattr(args, "live", False):
        from repro.streaming.dashboard import LiveDashboard

        # snapshots on stdout push the dashboard to stderr so the NDJSON stays clean
        frame_stream = sys.stderr if args.metrics_out == "-" else sys.stdout
        dashboard = bus.subscribe(LiveDashboard(stream=frame_stream))
    if getattr(args, "adaptive_batch", False):
        from repro.streaming.adaptivity import AdaptiveBatchSizer

        sizer = bus.subscribe(
            AdaptiveBatchSizer(
                engine,
                min_size=args.batch_min,
                max_size=args.batch_max,
                target_p95_us=args.latency_target_ms * 1000.0,
            )
        )
    return writer, dashboard, sizer


def cmd_run(args: argparse.Namespace) -> int:
    query_id = args.query.upper()
    if query_id not in QUERY_CATALOG:
        print(f"unknown query {args.query!r}; known: {', '.join(QUERY_CATALOG)}", file=sys.stderr)
        return 2
    scenario = _scenario_from(args)
    info = QUERY_CATALOG[query_id]
    bus = _metric_bus_from(args)
    engine = _engine_from(args, metric_bus=bus)
    writer = dashboard = sizer = None
    if bus is not None:
        writer, dashboard, sizer = _attach_consumers(args, bus, engine)
    try:
        with _graceful_signals():
            result = engine.execute(info.build(scenario))
    except ShutdownSignal as exc:
        # the engine's abort path already emitted the final snapshot and
        # closed the sinks; close the writer and report a partial run
        if dashboard is not None and dashboard.use_ansi:
            print()
        print(f"interrupted ({exc.name}); metrics flushed, sinks closed", file=sys.stderr)
        if writer is not None and args.metrics_out != "-":
            print(f"wrote {writer.written} snapshots to {args.metrics_out}", file=sys.stderr)
        return 130
    finally:
        if writer is not None:
            writer.close()
    if dashboard is not None and dashboard.use_ansi:
        print()  # leave the final frame on screen, drop below it
    limit = args.limit if args.limit is not None else 10
    for record in result.records[:limit]:
        print(json.dumps(record.as_dict(), default=str))
    if limit and len(result) > limit:
        print(f"... ({len(result) - limit} more)")
    print()
    print(result.metrics)
    if writer is not None and args.metrics_out != "-":
        print(f"wrote {writer.written} snapshots to {args.metrics_out}")
    if sizer is not None and sizer.resizes:
        trail = ", ".join(f"#{seq}->{size}" for seq, size in sizer.resizes)
        print(f"adaptive batch sizing: {trail}")
    if args.geojson:
        from repro.viz.layers import query_layer

        query_layer(query_id, result.records, title=info.title).save(args.geojson)
        print(f"wrote {args.geojson}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """``run --live`` with the record dump suppressed: just the dashboard."""
    args.live = True
    args.limit = 0
    args.geojson = None
    return cmd_run(args)


def _register_serve_queries(args, server, scenario, query_ids, writers, pool) -> None:
    """Register every catalog query on the server (shared by serve / bench --serve)."""
    from repro.streaming.metricbus import MetricBus, SnapshotWriter
    from repro.streaming.sink import FileSink

    for query_id in query_ids:
        query = QUERY_CATALOG[query_id].build(scenario)
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            path = os.path.join(args.out_dir, f"{query_id.lower()}.ndjson")
            query = query.sink(FileSink(path, resume=args.resume))
        # every runner gets a bus: backpressure reads its queue-depth gauge
        bus = MetricBus(
            interval_events=args.metrics_interval_events,
            interval_s=args.metrics_interval_s,
        )
        server.register(
            query_id,
            query,
            mode=args.execution_mode,
            batch_size=args.batch_size,
            metric_bus=bus,
            shed_target_eps=args.shed_target_eps,
            adaptive_batch=args.adaptive_batch,
            pool=pool,
            partitions=args.partitions if pool is not None else 1,
            partition_key=args.partition_key,
        )
        if args.metrics_dir:
            os.makedirs(args.metrics_dir, exist_ok=True)
            target = os.path.join(args.metrics_dir, f"{query_id.lower()}_metrics.ndjson")
            writers.append(bus.subscribe(SnapshotWriter(target)))


def cmd_serve(args: argparse.Namespace) -> int:
    """Long-running stream server: one TCP NDJSON feed, N registered queries."""
    import asyncio

    from repro.service import StreamServer

    query_ids = [query_id.upper() for query_id in args.queries]
    unknown = [query_id for query_id in query_ids if query_id not in QUERY_CATALOG]
    if unknown:
        print(
            f"unknown queries {', '.join(unknown)}; known: {', '.join(QUERY_CATALOG)}",
            file=sys.stderr,
        )
        return 2
    if len(set(query_ids)) != len(query_ids):
        print("duplicate query ids", file=sys.stderr)
        return 2
    scenario = _scenario_from(args)
    _apply_backend(args)
    restart_policy = None
    if args.restart_policy:
        from repro.service.retry import RestartPolicy

        try:
            restart_policy = RestartPolicy.parse(args.restart_policy)
        except ServiceError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.fault_plan:
        # arm before the pool forks so workers inherit the injector
        from repro.testing import faults as _faults

        _faults.arm(_faults.FaultPlan.from_json(args.fault_plan))
    pool = None
    if args.parallelism == "process":
        if args.execution_mode != "batch":
            print("--parallelism process requires --execution-mode batch", file=sys.stderr)
            return 2
        from repro.runtime.pool import WorkerPool

        respawn_policy = None
        if args.restart_policy:
            from repro.service.retry import RestartPolicy

            respawn_policy = RestartPolicy.parse(args.restart_policy)
        try:
            pool = WorkerPool(
                max(1, args.partitions),
                respawn_policy=respawn_policy,
                task_timeout_s=args.task_timeout,
            )
        except RuntimeError as exc:
            print(f"cannot start worker pool: {exc}", file=sys.stderr)
            return 2
        # fork the workers before any asyncio machinery exists, so children
        # never inherit the listening socket
        pool.warm_up()
    server = StreamServer(
        host=args.host,
        port=args.port,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval_events=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        resume=args.resume,
        stop_after_eos=args.stop_after_eos,
        restart_policy=restart_policy,
        dlq_dir=args.dlq_dir,
    )
    writers = []
    try:
        _register_serve_queries(args, server, scenario, query_ids, writers, pool)
    except ServiceError as exc:
        if pool is not None:
            pool.close()
        print(str(exc), file=sys.stderr)
        return 2

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal handlers
        await server.start()
        resumed = ""
        if args.resume and server.consumed:
            resumed = f" (resumed seq {server.checkpoint_seq} at offset {server.consumed})"
        print(
            f"serving {', '.join(query_ids)} on {server.host}:{server.port}{resumed}",
            flush=True,
        )
        try:
            await server.wait_stopped()
        finally:
            await server.stop(graceful=True)

    try:
        asyncio.run(_serve())
    finally:
        for writer in writers:
            writer.close()
        if pool is not None:
            pool.close()
    failed = server.errors
    health = server.health()
    for runner in server.runners:
        info = health["queries"][runner.name]
        status = f"  {runner.name}: in={runner.metrics.events_in} out={runner.events_out}"
        if info["restarts"]:
            status += f"  restarts={info['restarts']}"
        if info["dlq"]:
            status += f"  dlq={info['dlq']}"
        if info["status"] != "running":
            status += f"  {info['status'].upper()}: {info['error']}"
        print(status)
    if health["malformed"]:
        print(f"  malformed lines: {health['malformed']}")
    if args.checkpoint_dir and server.checkpoints is not None and server.checkpoints.exists():
        print(f"checkpoint seq {server.checkpoint_seq} in {args.checkpoint_dir}")
    return 1 if failed else 0


def cmd_feed(args: argparse.Namespace) -> int:
    """Send events to a running ``serve`` instance as NDJSON lines."""
    from repro.service import feed_events

    if args.input:
        events = []
        with open(args.input) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    else:
        events = _scenario_from(args).events
    if args.limit is not None:
        events = events[: args.limit]
    if args.fault_plan:
        from repro.testing import faults as _faults

        _faults.arm(_faults.FaultPlan.from_json(args.fault_plan))
    with _graceful_signals():
        sent = feed_events(
            args.host,
            args.port,
            events,
            eps=args.eps,
            eos=not args.no_eos,
            session=args.session,
        )
    suffix = "" if args.no_eos else " (+ eos)"
    print(f"fed {sent} events to {args.host}:{args.port}{suffix}")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Print a running server's supervision status; exit 1 unless all running."""
    from repro.service import request_health

    try:
        reply = request_health(args.host, args.port)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    reply.pop("__control__", None)
    print(json.dumps(reply, indent=2))
    unhealthy = [
        name
        for name, info in reply.get("queries", {}).items()
        if info.get("status") != "running"
    ]
    return 1 if unhealthy else 0


def cmd_bench(args: argparse.Namespace) -> int:
    requested = args.query.upper()
    if requested != "ALL" and requested not in QUERY_CATALOG:
        print(
            f"unknown query {args.query!r}; known: {', '.join(QUERY_CATALOG)} (or 'all')",
            file=sys.stderr,
        )
        return 2
    scenario = _scenario_from(args)
    query_ids = list(QUERY_CATALOG) if requested == "ALL" else [requested]
    for query_id in query_ids:
        if len(query_ids) > 1:
            print(f"-- {query_id} --")
        if getattr(args, "serve", False):
            _bench_serve(args, scenario, query_id)
        elif getattr(args, "scaling", False):
            _bench_scaling(args, scenario, query_id)
        else:
            _bench_one(args, scenario, query_id)
    return 0


def _bench_one(args: argparse.Namespace, scenario: Scenario, query_id: str) -> None:
    backend = _apply_backend(args)
    profile = getattr(args, "profile", False)
    info = QUERY_CATALOG[query_id]
    engines = [
        ("record", StreamExecutionEngine(measure_bytes=False, profile=profile)),
        (
            f"batch[{args.batch_size}]",
            StreamExecutionEngine(
                measure_bytes=False,
                execution_mode="batch",
                batch_size=args.batch_size,
                num_partitions=args.partitions,
                partition_key=args.partition_key,
                profile=profile,
                parallelism=getattr(args, "parallelism", "thread"),
            ),
        ),
    ]
    rates = []
    partitions_ran = 1
    profiles: dict = {}
    for label, engine in engines:
        if label != "record":
            label = f"{label}/{backend}"
        best = None
        for _ in range(max(1, args.repeat)):
            result = engine.execute(info.build(scenario))
            rate = result.metrics.ingestion_rate_eps
            best = rate if best is None or rate > best else best
        if result.partitions > 1:
            label += f" x{result.partitions} {getattr(args, 'parallelism', 'thread')}s"
            partitions_ran = result.partitions
        elif args.partitions > 1 and label != "record":
            label += " x1 (plan not partitionable)"
        rates.append(best)
        print(f"{label:>22}: {best:>12,.0f} events/s ({len(result)} output records)")
        if result.metrics.operator_seconds:
            breakdown = _profile_breakdown(result.metrics)
            profiles[engine.execution_mode] = breakdown
            _print_profile(breakdown)
    if rates[0]:
        print(f"{'speedup':>22}: {rates[1] / rates[0]:.2f}x")
    if args.json:
        extra = dict(
            batch_size=args.batch_size,
            partitions=partitions_ran,
            events_in=result.metrics.events_in,
            backend=backend,
        )
        if profiles:
            extra["profile"] = profiles
        merge_bench_json(
            args.json,
            query_id,
            record_eps=rates[0],
            batch_eps=rates[1],
            **extra,
        )
        print(f"wrote {args.json}")


def _bench_scaling(args: argparse.Namespace, scenario: Scenario, query_id: str) -> None:
    """``bench --scaling``: eps at 1/2/4 partitions × thread/process.

    Persists per-configuration rates (plus the core count they were measured
    on) into the ``scaling`` section of ``--json`` — separate from the
    floor-gated ``queries`` section, so scaling snapshots never move the
    headline record-vs-batch entries.
    """
    backend = _apply_backend(args)
    info = QUERY_CATALOG[query_id]
    rates: dict = {}
    for partitions in (1, 2, 4):
        modes = ("thread",) if partitions == 1 else ("thread", "process")
        for parallelism in modes:
            engine = StreamExecutionEngine(
                measure_bytes=False,
                execution_mode="batch",
                batch_size=args.batch_size,
                num_partitions=partitions,
                partition_key=args.partition_key,
                parallelism=parallelism,
            )
            best = None
            for _ in range(max(1, args.repeat)):
                result = engine.execute(info.build(scenario))
                rate = result.metrics.ingestion_rate_eps
                best = rate if best is None or rate > best else best
            key = "batch@1" if partitions == 1 else f"{parallelism}@{partitions}"
            rates[key] = round(best, 1)
            suffix = "" if result.partitions == partitions else (
                f" (ran x{result.partitions}: plan not partitionable)"
            )
            print(f"{key:>22}: {best:>12,.0f} events/s{suffix}")
    base = rates.get("batch@1")
    if base:
        for key, rate in rates.items():
            if key != "batch@1":
                print(f"{key + ' speedup':>22}: {rate / base:.2f}x")
    pool_reuse = _bench_pool_reuse(args, scenario, query_id)
    if pool_reuse:
        print(
            f"{'pool cold@2':>22}: {pool_reuse['cold_eps']:>12,.0f} events/s"
        )
        print(
            f"{'pool warm@2':>22}: {pool_reuse['warm_eps']:>12,.0f} events/s "
            f"({pool_reuse['ratio']:.2f}x cold)"
        )
    if args.json:
        extra = dict(
            backend=backend,
            batch_size=args.batch_size,
            events_in=result.metrics.events_in,
            cores=os.cpu_count(),
        )
        if pool_reuse:
            extra["pool_reuse"] = pool_reuse
        merge_bench_scaling(args.json, query_id, rates=rates, **extra)
        print(f"wrote {args.json}")


def _bench_pool_reuse(args: argparse.Namespace, scenario: Scenario, query_id: str) -> Optional[dict]:
    """Cold-vs-warm eps on a persistent worker pool at 2 partitions.

    The cold run pays the pool's fork plus the shared-memory export and the
    workers' pipeline compile; warm re-executions of the same plan reuse all
    three.  ``None`` where fork isn't available.
    """
    from repro.runtime.parallel import process_pool_available
    from repro.runtime.pool import WorkerPool

    if not process_pool_available():
        return None
    info = QUERY_CATALOG[query_id]
    partitions = 2
    pool = WorkerPool(partitions)
    try:
        engine = StreamExecutionEngine(
            measure_bytes=False,
            execution_mode="batch",
            batch_size=args.batch_size,
            num_partitions=partitions,
            partition_key=args.partition_key,
            parallelism="process",
            worker_pool=pool,
        )
        # first execution forks the workers, builds the shm export and
        # compiles in every worker — the amortized costs
        result = engine.execute(info.build(scenario))
        cold = result.metrics.ingestion_rate_eps
        warm = None
        for _ in range(max(1, args.repeat)):
            result = engine.execute(info.build(scenario))
            rate = result.metrics.ingestion_rate_eps
            warm = rate if warm is None or rate > warm else warm
        return {
            "partitions": partitions,
            "cold_eps": round(cold, 1),
            "warm_eps": round(warm, 1),
            "ratio": round(warm / cold, 3) if cold else None,
            "warm_executions": pool.stats["warm_executions"],
            "compiled_cache_hits": pool.stats["compiled_cache_hits"],
        }
    finally:
        pool.close()


def _bench_serve(args: argparse.Namespace, scenario: Scenario, query_id: str) -> None:
    """``bench --serve``: sustained service-layer throughput under load.

    Spins up an in-process :class:`StreamServer` (batch runners; sharded
    over a persistent worker pool when ``--parallelism process`` and
    ``--partitions > 1``), replays the scenario through ``--feeders``
    concurrent TCP connections, and reports sustained events/second over
    the feeding wall clock plus the p99 micro-batch latency from the
    runner's metric bus.  Persists a ``service`` section into ``--json``.
    """
    import asyncio
    from time import monotonic

    from repro.service import StreamServer, feed_events
    from repro.streaming.metricbus import MetricBus

    backend = _apply_backend(args)
    info = QUERY_CATALOG[query_id]
    parallelism = getattr(args, "parallelism", "thread")
    pool = None
    if parallelism == "process" and args.partitions > 1:
        from repro.runtime.pool import WorkerPool

        try:
            pool = WorkerPool(max(1, args.partitions))
        except RuntimeError as exc:
            print(f"worker pool unavailable ({exc}); running single-process", file=sys.stderr)
        else:
            # fork before the event loop exists (children must not inherit
            # the listening socket)
            pool.warm_up()
    bus = MetricBus(interval_events=2000, interval_s=0.5)
    server = StreamServer(stop_after_eos=True)
    server.register(
        query_id,
        info.build(scenario),
        mode="batch",
        batch_size=args.batch_size,
        metric_bus=bus,
        pool=pool,
        partitions=args.partitions if pool is not None else 1,
        partition_key=args.partition_key,
    )
    events = scenario.events
    feeders = max(1, args.feeders)
    slices = [events[i::feeders] for i in range(feeders)]
    timing: dict = {}

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        timing["start"] = monotonic()
        await asyncio.gather(
            *(
                loop.run_in_executor(
                    None,
                    lambda s=s: feed_events(server.host, server.port, s, eos=False),
                )
                for s in slices
            )
        )
        # a feeder returning means its bytes were *sent*, not consumed —
        # wait for the server to drain every connection before the EOS
        # control line (sent on its own connection) can overtake them
        total = sum(len(s) for s in slices)
        while server.consumed < total:
            await asyncio.sleep(0.01)
        await loop.run_in_executor(
            None, lambda: feed_events(server.host, server.port, [], eos=True)
        )
        await server.wait_stopped()
        timing["stop"] = monotonic()

    try:
        asyncio.run(_run())
    finally:
        if pool is not None:
            pool.close()
    runner = server.runners[0]
    wall = timing["stop"] - timing["start"]
    eps = runner.metrics.events_in / wall if wall > 0 else 0.0
    p99_s = bus.histogram.percentile(0.99)
    p99_us = round(p99_s * 1e6, 3) if p99_s is not None else None
    sharded = pool is not None
    label = f"serve[{args.batch_size}]/{backend}"
    if sharded:
        label += f" x{args.partitions} shards"
    print(f"{label:>22}: {eps:>12,.0f} events/s sustained ({feeders} feeders)")
    if p99_us is not None:
        print(f"{'batch p99':>22}: {p99_us:>12,.1f} µs")
    print(
        f"{'totals':>22}: in={runner.metrics.events_in} out={runner.events_out} "
        f"wall={wall:.3f}s"
    )
    if args.json:
        merge_bench_service(
            args.json,
            query_id,
            {
                "sustained_eps": round(eps, 1),
                "p99_us": p99_us,
                "feeders": feeders,
                "partitions": args.partitions if sharded else 1,
                "parallelism": "process" if sharded else "single",
                "batch_size": args.batch_size,
                "events_in": runner.metrics.events_in,
                "events_out": runner.events_out,
                "backend": backend,
            },
        )
        print(f"wrote {args.json}")


def merge_bench_service(path: str, query_id: str, payload: dict) -> None:
    """Merge one query's sustained-load service numbers into the bench JSON
    (``data["service"][query_id]``; the ``queries``/``scaling`` sections are
    untouched)."""
    data: dict = {"queries": {}}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict) and isinstance(loaded.get("queries", {}), dict):
            data = loaded
    data.setdefault("service", {})[query_id] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def merge_bench_scaling(path: str, query_id: str, rates: dict, **extra) -> None:
    """Merge one query's partition-scaling rates into the bench JSON file.

    Writes ``data["scaling"][query_id]`` and leaves the floor-gated
    ``queries`` section untouched.
    """
    data: dict = {"queries": {}}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict) and isinstance(loaded.get("queries", {}), dict):
            data = loaded
    entry = {"rates": rates}
    entry.update(extra)
    data.setdefault("scaling", {})[query_id] = entry
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _profile_breakdown(metrics) -> dict:
    """Per-operator wall-time rows from a profiled batch run (last repeat),
    slowest first: ``{label: {seconds, share, events}}``."""
    total = sum(metrics.operator_seconds.values()) or 1.0
    return {
        label: {
            "seconds": round(seconds, 6),
            "share": round(seconds / total, 4),
            "events": metrics.operator_events.get(label, 0),
        }
        for label, seconds in sorted(
            metrics.operator_seconds.items(), key=lambda item: -item[1]
        )
    }


def _print_profile(breakdown: dict) -> None:
    print(f"{'per-operator wall time':>22}:")
    for label, row in breakdown.items():
        print(
            f"{'':>8}{label:<28} {row['seconds']*1000.0:>9.2f} ms "
            f"{row['share']*100.0:>5.1f}%  {row['events']:>9,} events"
        )


def merge_bench_json(path: str, query_id: str, record_eps: float, batch_eps: float, **extra) -> None:
    """Merge one query's record-vs-batch rates into a machine-readable file.

    The canonical writer for ``BENCH_runtime.json`` (shared with the
    benchmark gates in ``benchmarks/test_bench_runtime.py``): one entry per
    query holding ``record_eps`` / ``batch_eps`` / ``speedup`` plus any extra
    keys, so repeated invocations accumulate a consistent per-query schema.
    """
    data: dict = {"queries": {}}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            loaded = None
        # start fresh on any unusable shape, not just unparseable files
        if isinstance(loaded, dict) and isinstance(loaded.get("queries", {}), dict):
            data = loaded
    entry = {
        "record_eps": round(record_eps, 1),
        "batch_eps": round(batch_eps, 1),
        "speedup": round(batch_eps / record_eps, 3) if record_eps else None,
    }
    entry.update(extra)
    data.setdefault("queries", {})[query_id] = entry
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def cmd_report(args: argparse.Namespace) -> int:
    from benchmarks.report import print_report, run_report, shape_check

    rows = run_report(args.duration, args.interval, args.seed)
    print_report(rows)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"rows": rows, "checks": shape_check(rows)}, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from benchmarks.figures import figure2, figure3

    scenario = _scenario_from(args)
    os.makedirs(args.output_dir, exist_ok=True)
    if args.figure in ("2", "all"):
        figure2(scenario, args.output_dir)
    if args.figure in ("3", "all"):
        figure3(scenario, args.output_dir)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    queries = subparsers.add_parser("queries", help="list the catalog queries")
    queries.set_defaults(func=cmd_queries)

    dataset = subparsers.add_parser("dataset", help="generate the SNCB dataset as JSON lines")
    _add_scenario_arguments(dataset)
    dataset.add_argument("--output", type=str, default=None, help="output file (default: stdout)")
    dataset.set_defaults(func=cmd_dataset)

    run = subparsers.add_parser("run", help="run one catalog query")
    run.add_argument("query", help="query id, e.g. Q3")
    _add_scenario_arguments(run)
    _add_execution_arguments(run)
    _add_metrics_arguments(run)
    run.add_argument("--limit", type=int, default=None, help="max output records to print")
    run.add_argument("--geojson", type=str, default=None, help="also write the output layer here")
    run.set_defaults(func=cmd_run)

    top = subparsers.add_parser(
        "top", help="run one catalog query with a live terminal dashboard"
    )
    top.add_argument("query", help="query id, e.g. Q3")
    _add_scenario_arguments(top)
    _add_execution_arguments(top)
    _add_metrics_arguments(top, live_flag=False)
    top.set_defaults(func=cmd_top)

    serve = subparsers.add_parser(
        "serve",
        help="long-running stream server: TCP NDJSON ingestion fanned out to N queries",
    )
    serve.add_argument("queries", nargs="+", help="query ids to register, e.g. Q1 Q2")
    _add_scenario_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one; printed at startup)"
    )
    serve.add_argument(
        "--execution-mode",
        choices=["record", "batch"],
        default="record",
        help="engine behind every registered query",
    )
    serve.add_argument("--batch-size", type=int, default=256, help="rows per micro-batch")
    serve.add_argument(
        "--parallelism",
        choices=["single", "process"],
        default="single",
        help="'single' runs every query in the server process; 'process' "
        "shards each batch-mode query across a persistent fork-based worker "
        "pool (--partitions long-lived shard pipelines, scattered on "
        "--partition-key, outputs re-merged in event-time order)",
    )
    serve.add_argument(
        "--partitions",
        type=int,
        default=2,
        help="shards per query for --parallelism process",
    )
    serve.add_argument(
        "--partition-key",
        type=str,
        default="device_id",
        help="record field to shard on (must be stable from the source)",
    )
    serve.add_argument(
        "--batch-backend",
        choices=["auto", "numpy", "python"],
        default=None,
        help="column backend for --execution-mode batch",
    )
    serve.add_argument(
        "--out-dir",
        default=None,
        help="write each query's output records to <out-dir>/<qid>.ndjson",
    )
    serve.add_argument(
        "--metrics-dir",
        default=None,
        help="write each query's metrics snapshots to <metrics-dir>/<qid>_metrics.ndjson",
    )
    serve.add_argument("--metrics-interval-events", type=int, default=1000)
    serve.add_argument("--metrics-interval-s", type=float, default=0.5)
    serve.add_argument(
        "--adaptive-batch",
        action="store_true",
        help="let each query's snapshot loop resize its micro-batches (batch mode)",
    )
    serve.add_argument(
        "--shed-target-eps",
        type=float,
        default=None,
        help="prepend an adaptive load shedder tuned to this ingest rate on every query",
    )
    serve.add_argument(
        "--high-watermark",
        type=int,
        default=10_000,
        help="pause socket reads when a query's ingest queue reaches this depth",
    )
    serve.add_argument(
        "--low-watermark",
        type=int,
        default=1_000,
        help="resume socket reads when the total backlog falls to this depth",
    )
    serve.add_argument(
        "--checkpoint-dir", default=None, help="directory for barrier checkpoints"
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint every N ingested events (0 = only on graceful shutdown)",
    )
    serve.add_argument(
        "--checkpoint-keep",
        type=int,
        default=3,
        help="retain the last N checkpoint pairs in --checkpoint-dir",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore operator/sink state from --checkpoint-dir and skip the "
        "already-consumed prefix of the replayed feed",
    )
    serve.add_argument(
        "--stop-after-eos",
        action="store_true",
        help="exit once an end-of-stream control line has been drained (scripted runs)",
    )
    serve.add_argument(
        "--restart-policy",
        default=None,
        metavar="K[/WINDOW_S]",
        help="supervise crashed queries: restart from the newest valid "
        "checkpoint up to K times per rolling window (then mark the query "
        "degraded while siblings keep serving); also arms the pool's "
        "crash-loop breaker under --parallelism process",
    )
    serve.add_argument(
        "--dlq-dir",
        default=None,
        help="route malformed wire lines and poison records to per-query "
        "dead-letter NDJSON files in this directory instead of failing",
    )
    serve.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog on pool pipe replies: a worker silent this long is "
        "retired like a dead one (--parallelism process)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="arm a seeded fault-injection plan (JSON; chaos testing only)",
    )
    serve.set_defaults(func=cmd_serve)

    health = subparsers.add_parser(
        "health", help="query a running server's supervision status over the wire"
    )
    health.add_argument("--host", default="127.0.0.1")
    health.add_argument("--port", type=int, required=True)
    health.set_defaults(func=cmd_health)

    feed = subparsers.add_parser(
        "feed", help="send scenario or NDJSON-file events to a running server"
    )
    _add_scenario_arguments(feed)
    feed.add_argument("--host", default="127.0.0.1")
    feed.add_argument("--port", type=int, required=True)
    feed.add_argument(
        "--input", default=None, help="NDJSON file to send instead of generated scenario events"
    )
    feed.add_argument("--limit", type=int, default=None, help="send at most this many events")
    feed.add_argument("--eps", type=float, default=None, help="pace the feed (events/second)")
    feed.add_argument(
        "--no-eos", action="store_true", help="do not send the end-of-stream control line"
    )
    feed.add_argument(
        "--session",
        default=None,
        metavar="ID",
        help="feed under a named session: a dropped connection reconnects and "
        "resumes from the server's acknowledged offset ('auto' generates one)",
    )
    feed.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="arm a seeded fault-injection plan (JSON; chaos testing only)",
    )
    feed.set_defaults(func=cmd_feed)

    bench = subparsers.add_parser(
        "bench", help="compare record-at-a-time vs micro-batch execution on one query"
    )
    bench.add_argument("query", help="query id (e.g. Q1), or 'all' for the whole catalog")
    _add_scenario_arguments(bench)
    _add_batch_arguments(bench)
    bench.add_argument("--repeat", type=int, default=3, help="runs per mode (best is kept)")
    bench.add_argument(
        "--scaling",
        action="store_true",
        help="partition-scaling sweep instead of record-vs-batch: eps at "
        "1/2/4 partitions for thread and process parallelism, persisted "
        "under the 'scaling' section of --json",
    )
    bench.add_argument(
        "--serve",
        action="store_true",
        help="sustained-load service bench instead of replay: an in-process "
        "server fed over TCP by --feeders concurrent connections (batch "
        "runners; sharded over a persistent worker pool with --parallelism "
        "process --partitions N), reporting sustained eps and batch p99, "
        "persisted under the 'service' section of --json",
    )
    bench.add_argument(
        "--feeders",
        type=int,
        default=4,
        help="concurrent feeder connections for --serve",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="per-operator wall-time breakdown of both pipelines (from the "
        "last repeat; the record engine clocks each operator resume, the "
        "batch engine one clock pair per stage per batch, so both rates "
        "carry a small measurement overhead)",
    )
    bench.add_argument(
        "--json",
        type=str,
        default=None,
        help="merge machine-readable results into this file (e.g. BENCH_runtime.json)",
    )
    bench.set_defaults(func=cmd_bench)

    report = subparsers.add_parser("report", help="paper-vs-measured throughput table")
    report.add_argument("--duration", type=float, default=3600.0)
    report.add_argument("--interval", type=float, default=2.0)
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--json", type=str, default=None)
    report.set_defaults(func=cmd_report)

    figures = subparsers.add_parser("figures", help="regenerate Figure 2 / Figure 3 data")
    figures.add_argument("--figure", choices=["2", "3", "all"], default="all")
    figures.add_argument("--output-dir", default="benchmarks/output")
    _add_scenario_arguments(figures)
    figures.set_defaults(func=cmd_figures)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (PlanError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ShutdownSignal as exc:
        print(f"interrupted ({exc.name})", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
