"""Streaming service layer: long-running server, network I/O, checkpoints.

The replay engines (:mod:`repro.streaming`, :mod:`repro.runtime`) execute a
finite source to completion; this package runs the same compiled pipelines
continuously — asyncio TCP NDJSON ingestion shared by N registered queries,
metrics-bus-driven backpressure, and barrier checkpoints that let a
restarted server resume mid-stream with exact output parity.  See the
README's "Service layer" section for the CLI (`serve` / `feed`) and wire
protocol.
"""

from repro.service.checkpoint import CheckpointManager
from repro.service.dlq import DeadLetterQueue
from repro.service.net import SocketSink, SocketSource, feed_events, request_health
from repro.service.retry import RestartPolicy, RetryExhausted, RetryPolicy
from repro.service.runner import QueryRunner
from repro.service.server import StreamServer

__all__ = [
    "CheckpointManager",
    "DeadLetterQueue",
    "QueryRunner",
    "RestartPolicy",
    "RetryExhausted",
    "RetryPolicy",
    "SocketSink",
    "SocketSource",
    "StreamServer",
    "feed_events",
    "request_health",
]
