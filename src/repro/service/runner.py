"""Push-driven query execution for the stream server.

The replay engines pull a finite source to completion; a server is fed one
record at a time, indefinitely.  :class:`QueryRunner` turns a compiled plan
into that shape while reusing the engines' own machinery — the record path
pushes through :meth:`StreamExecutionEngine._push`, the batch path buffers
into micro-batches and runs them through the compiled batch stages — so a
runner's cumulative output is record-for-record identical to replaying the
same events through ``engine.execute`` (the parity the service tests pin).

Runners are single-threaded: the server drives each one from its own worker
coroutine and quiesces all of them before checkpointing.

A batch runner given a :class:`~repro.runtime.pool.WorkerPool` and
``partitions > 1`` becomes *sharded*: it opens long-lived shard pipelines in
the pool's worker processes (one compiled copy per shard, resident across
micro-batches), scatters each drained buffer by the partition key's stable
hash, and re-merges shard outputs in event-time order.  Only plans whose
partition key is stable from the source qualify (``_partition_split == 0``)
— the same record-parity contract as the replay engines' partitioned path.
"""

from __future__ import annotations

import heapq
import pickle
from time import perf_counter
from typing import Any, Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.streaming.adaptivity import AdaptiveLoadShedder
from repro.streaming.engine import StreamExecutionEngine
from repro.streaming.metrics import MetricsCollector, adaptivity_stats_of
from repro.streaming.query import Query
from repro.streaming.record import Record, estimate_record_bytes

_MODES = ("record", "batch")


class QueryRunner:
    """One registered query: a compiled pipeline fed record by record.

    ``mode="record"`` runs the record-at-a-time operators; ``mode="batch"``
    buffers up to ``batch_size`` records and runs the compiled batch stages
    (the buffer also drains at checkpoint barriers and shutdown — batch
    boundaries never change *which* records come out, only when).

    ``shed_target_eps`` prepends an
    :class:`~repro.streaming.adaptivity.AdaptiveLoadShedder` ahead of the
    query's own operators — the hook the server's backpressure control loop
    engages without touching the registered query.

    ``pool`` + ``partitions > 1`` (batch mode only) runs the pipeline
    sharded across the pool's resident worker processes instead of in this
    process; see the module docstring.
    """

    def __init__(
        self,
        name: str,
        query: "Query",
        mode: str = "record",
        batch_size: int = 256,
        fuse: bool = True,
        metric_bus=None,
        shed_target_eps: Optional[float] = None,
        pool=None,
        partitions: int = 1,
        partition_key: str = "device_id",
    ) -> None:
        if mode not in _MODES:
            raise ServiceError(f"unknown runner mode {mode!r}; expected one of {_MODES}")
        self.name = name
        self.mode = mode
        self.batch_size = max(1, int(batch_size))
        self.partitions = max(1, int(partitions))
        self.partition_key = partition_key
        sharded = pool is not None and self.partitions > 1
        plan = query.plan()
        self._engine = StreamExecutionEngine(measure_bytes=False)
        operators, sinks, entry_points = self._engine.compile(plan)
        if entry_points:
            raise ServiceError(
                f"query {name!r} has a binary node (join/union); the service layer "
                "runs linear plans only — materialize the side into the feed instead"
            )
        if sharded:
            if mode != "batch":
                raise ServiceError(
                    f"query {name!r}: sharded execution requires mode='batch'"
                )
            if shed_target_eps is not None:
                raise ServiceError(
                    f"query {name!r}: shed_target_eps is incompatible with sharded "
                    "execution — the shedder would only see the parent's scatter"
                )
        self.shedder: Optional[AdaptiveLoadShedder] = None
        if shed_target_eps is not None:
            self.shedder = AdaptiveLoadShedder(shed_target_eps)
            operators = [self.shedder] + operators
        self.operators = operators
        self.sinks = sinks
        self.metrics = MetricsCollector(name, bus=metric_bus)
        self.events_out = 0
        self.finished = False
        self._stages = None
        self._shards = None
        self._buffer: List[Record] = []
        self._pool = pool
        self._plan = plan
        self._fuse = fuse
        if sharded:
            self._shards = self._open_shards(pool, plan, fuse)
        elif mode == "batch":
            from repro.runtime.operators import build_batch_pipeline

            self._stages = build_batch_pipeline(operators, (), fuse=fuse)
        bus = self.metrics.bus
        if bus is not None:
            bus.set_gauge("buffer_depth", lambda: self.buffered_depth())
            bus.set_gauge("adaptivity", lambda: adaptivity_stats_of(self.operators))
        # Pre-event state snapshot: the supervisor's restart-from-scratch
        # fallback when no valid checkpoint generation exists yet.
        try:
            self._pristine: Optional[bytes] = pickle.dumps(self.checkpoint_state())
        except Exception:
            self._pristine = None
        self.metrics.start()

    def _open_shards(self, pool, plan, fuse: bool):
        """Qualify the plan for sharding and open the shard pipelines."""
        from repro.runtime.engine import BatchExecutionEngine

        engine = BatchExecutionEngine(
            batch_size=self.batch_size,
            measure_bytes=False,
            fuse=fuse,
            num_partitions=self.partitions,
            partition_key=self.partition_key,
        )
        compiled = engine.compile(plan)
        split = engine._partition_split(plan, compiled)
        if split != 0:
            raise ServiceError(
                f"query {self.name!r} cannot shard on {self.partition_key!r}: the key "
                "must be stable from the source (map-derived or unstable keys need "
                "a single-partition prefix the push-driven service does not run)"
            )
        return pool.open_shards(self.name, engine, plan, self.partitions)

    # -- feeding ---------------------------------------------------------------------

    def process(self, record: Record) -> int:
        """Feed one record; returns how many output records it produced."""
        if self.finished:
            return 0
        self.metrics.record_in(1, estimate_record_bytes(record))
        if self._stages is None and self._shards is None:
            produced = 0
            for _ in self._engine._push(record, self.operators, 0, self.metrics):
                produced += 1
            self.events_out += produced
            return produced
        self._buffer.append(record)
        if len(self._buffer) >= self.batch_size:
            return self.drain()
        return 0

    def drain(self) -> int:
        """Run the buffered partial batch through the stages (batch mode)."""
        if (self._stages is None and self._shards is None) or not self._buffer:
            return 0
        started = perf_counter()
        if self._shards is not None:
            produced = self._drain_sharded()
        else:
            from repro.runtime.batch import RecordBatch
            from repro.runtime.engine import BatchExecutionEngine

            batch = RecordBatch.from_records(self._buffer)
            self._buffer = []
            out = BatchExecutionEngine._run_through(self._stages, batch, 0, self.metrics)
            produced = len(out) if out is not None else 0
        self.events_out += produced
        bus = self.metrics.bus
        if bus is not None and produced:
            bus.observe_latency(perf_counter() - started, produced)
        return produced

    def _drain_sharded(self) -> int:
        """Scatter the buffer across the shards and merge their outputs."""
        from repro.runtime.parallel import stable_hash

        num_shards = self._shards.num_shards
        per_shard: List[List[Record]] = [[] for _ in range(num_shards)]
        key = self.partition_key
        for record in self._buffer:
            per_shard[stable_hash(record.data.get(key)) % num_shards].append(record)
        self._buffer = []
        payloads = self._shards.feed(per_shard)
        return self._merge_shard_payloads([p for p in payloads if p is not None])

    def _merge_shard_payloads(self, payloads: List[Dict[str, Any]]) -> int:
        """Fold shard outputs into the parent: event-time-merged records,
        operator metric deltas, and sink writes replayed in timestamp order."""
        if not payloads:
            return 0
        produced = 0
        for record in heapq.merge(
            *(p["records"] for p in payloads), key=lambda r: r.timestamp
        ):
            produced += 1
        for payload in payloads:
            for label, count in payload["operator_events"].items():
                self.metrics.record_operator(label, count)
            for label, seconds in payload["operator_seconds"].items():
                self.metrics.record_operator_time(label, seconds)
        for index, sink in enumerate(self.sinks):
            for record in heapq.merge(
                *(p["sinks"][index] for p in payloads), key=lambda r: r.timestamp
            ):
                sink.accept(record)
        return produced

    def set_batch_size(self, batch_size: int) -> None:
        """Resize micro-batches (the ``AdaptiveBatchSizer`` engine hook)."""
        self.batch_size = max(1, int(batch_size))

    def finish(self) -> int:
        """End-of-stream: flush stateful operators and build the final report.

        Idempotent; the final metric-bus snapshot is emitted by the report.
        Returns how many records the flush produced.
        """
        if self.finished:
            return 0
        self.finished = True
        produced = 0
        if self._shards is not None:
            self.drain()
            produced = self._merge_shard_payloads(self._shards.flush())
            self._shards.close()
        elif self._stages is None:
            for _ in self._engine._flush(self.operators, 0, self.metrics):
                produced += 1
        else:
            self.drain()
            from repro.runtime.engine import BatchExecutionEngine

            flushed: List[Record] = []
            BatchExecutionEngine._flush_stages(self._stages, self.metrics, flushed)
            produced = len(flushed)
        self.events_out += produced
        self.metrics.stop()
        self.metrics.events_out = self.events_out
        self.metrics.record_adaptivity(adaptivity_stats_of(self.operators))
        self.metrics.report()
        return produced

    def abort(self) -> None:
        """Release metrics/bus without flushing (crash-style teardown)."""
        if self.finished:
            return
        self.finished = True
        if self._shards is not None:
            try:
                self._shards.close()
            except Exception:
                pass
        self.metrics.stop()
        self.metrics.events_out = self.events_out
        try:
            self.metrics.report()
        except Exception:
            pass

    # -- introspection ---------------------------------------------------------------

    def buffered_depth(self) -> int:
        depth = len(self._buffer)
        if self._shards is not None:
            return depth  # worker-resident operator state is not visible here
        if self._stages is None:
            for operator in self.operators:
                depth += operator.buffered_depth()
        else:
            for stage in self._stages:
                depth += stage.buffered_depth()
        return depth

    # -- checkpoint / restore --------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        """Picklable operator + sink state; call only at a quiesced barrier.

        Batch mode drains the partial buffer first — output record *content*
        is batch-size independent, so the early boundary preserves parity
        while keeping in-flight records out of the checkpoint.
        """
        self.drain()
        if self._shards is not None:
            state = self._common_checkpoint_fields()
            state.update(
                {
                    "sharded": True,
                    "num_shards": self._shards.num_shards,
                    "shards": self._shards.checkpoint(),
                }
            )
            return state
        operator_states: List[Any] = []
        if self._stages is None:
            for position, operator in enumerate(self.operators):
                state = operator.checkpoint()
                if state is not None:
                    operator_states.append((position, state))
        else:
            from repro.runtime.operators import iter_operators

            for stage in iter_operators(self._stages):
                state = stage.checkpoint()
                if state is not None:
                    operator_states.append((stage.position, state))
        state = self._common_checkpoint_fields()
        state["operators"] = operator_states
        return state

    def _common_checkpoint_fields(self) -> Dict[str, Any]:
        sink_positions: List[Any] = []
        for sink in self.sinks:
            if hasattr(sink, "checkpoint_position"):
                sink_positions.append(sink.checkpoint_position())
            else:
                sink_positions.append(None)
        return {
            "sinks": sink_positions,
            "events_in": self.metrics.events_in,
            "events_out": self.events_out,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Overwrite live state with a checkpoint's; also un-finishes the
        runner and discards any buffered-but-unprocessed records, so the
        supervisor can restore the *same* runner object after a crash."""
        self._buffer = []
        self.finished = False
        if self._shards is not None:
            if not state.get("sharded"):
                raise ServiceError(
                    f"checkpoint for {self.name!r} was taken without sharding; "
                    "restore it with a non-sharded runner or re-checkpoint"
                )
            if state["num_shards"] != self._shards.num_shards:
                raise ServiceError(
                    f"checkpoint for {self.name!r} has {state['num_shards']} shards "
                    f"but this runner opened {self._shards.num_shards} — restart "
                    "with matching --partitions"
                )
            self._shards.restore(state["shards"])
            self._restore_common(state)
            return
        if state.get("sharded"):
            raise ServiceError(
                f"checkpoint for {self.name!r} was taken with {state['num_shards']} "
                "shards; restore it with a sharded runner (--parallelism process "
                "and matching --partitions)"
            )
        by_position = dict(state["operators"])
        if self._stages is None:
            for position, operator in enumerate(self.operators):
                if position in by_position:
                    operator.restore(by_position.pop(position))
        else:
            from repro.runtime.operators import iter_operators

            for stage in iter_operators(self._stages):
                if stage.position in by_position:
                    stage.restore(by_position.pop(stage.position))
        if by_position:
            raise ServiceError(
                f"checkpoint for {self.name!r} carries state for operator positions "
                f"{sorted(by_position)} this pipeline does not have — was the query "
                "or execution mode changed since the checkpoint?"
            )
        self._restore_common(state)

    def _restore_common(self, state: Dict[str, Any]) -> None:
        for sink, position in zip(self.sinks, state["sinks"]):
            if position is not None:
                if not hasattr(sink, "restore_position"):
                    raise ServiceError(
                        f"sink {sink!r} cannot restore a checkpointed position"
                    )
                sink.restore_position(position)
        self.metrics.events_in = state["events_in"]
        self.events_out = state["events_out"]

    def restore_pristine(self) -> None:
        """Reset to the pre-event snapshot taken at construction — the
        restart path when no checkpoint generation survived."""
        if self._pristine is None:
            raise ServiceError(
                f"query {self.name!r} has no pristine snapshot to restart from"
            )
        self.restore_state(pickle.loads(self._pristine))

    def reopen_shards(self) -> None:
        """Rebuild the shard pipelines after a worker death (sharded only).

        The pool respawns dead workers on the next open; restoring state is
        the caller's job (``restore_state`` / ``restore_pristine``)."""
        if self._shards is None:
            return
        try:
            self._shards.close()
        except Exception:
            pass
        self._shards = self._open_shards(self._pool, self._plan, self._fuse)

    # -- teardown --------------------------------------------------------------------

    def flush_sinks(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close_sinks(self) -> None:
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:
                pass

    def __repr__(self) -> str:
        return f"QueryRunner({self.name!r}, mode={self.mode!r})"
