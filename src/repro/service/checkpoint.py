"""Atomic, rotated operator-state checkpoints for the stream server.

A checkpoint is a pair of seq-numbered files in the checkpoint directory:

* ``checkpoint-<seq>.pkl`` — the pickled payload: per-query operator state
  (by pipeline position) and sink positions, plus the global ``consumed``
  event offset the barrier was taken at;
* ``checkpoint-<seq>.json`` — a small manifest (``seq``, ``consumed``,
  per-query event counters) readable without unpickling, for feeders,
  tests and humans.

Both are written to temp files and moved into place with ``os.replace``
(payload first, manifest last), so a pair is *complete* exactly when its
manifest exists — a crash mid-write leaves the previous complete pair
intact.  The manager keeps the last ``keep`` complete pairs and prunes
older ones manifest-first, so a crash mid-prune can leave a payload
without a manifest (ignored as incomplete) but never a manifest without
its pickle.  The payload is pickled *inside the barrier* (operator state
may alias live containers) and versioned; a future layout change bumps
``FORMAT_VERSION`` and refuses mismatched files instead of mis-restoring
them.

Pre-rotation directories (a single unnumbered ``checkpoint.pkl``/``.json``
pair) are still readable: the legacy pair acts as the oldest generation.
"""

from __future__ import annotations

import json
import os
import pickle
import re
from typing import Any, Dict, List, Optional

from repro.errors import CheckpointError

FORMAT_VERSION = 1

_LEGACY_PAYLOAD_FILE = "checkpoint.pkl"
_LEGACY_MANIFEST_FILE = "checkpoint.json"
_PAIR_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


class CheckpointManager:
    """Writes, rotates and reads the server's checkpoint pairs in one directory."""

    def __init__(self, directory: str, keep: int = 3) -> None:
        self.directory = directory
        self.keep = max(1, int(keep))
        os.makedirs(directory, exist_ok=True)

    # -- pair discovery ---------------------------------------------------------

    def _pair(self, seq: int) -> "tuple[str, str]":
        stem = os.path.join(self.directory, f"checkpoint-{seq:08d}")
        return stem + ".pkl", stem + ".json"

    def _complete_seqs(self) -> List[int]:
        """Ascending seq numbers whose payload *and* manifest both exist."""
        seqs = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = _PAIR_RE.match(name)
            if match is None:
                continue
            seq = int(match.group(1))
            if os.path.exists(self._pair(seq)[0]):
                seqs.append(seq)
        return sorted(seqs)

    def _legacy_complete(self) -> bool:
        return os.path.exists(
            os.path.join(self.directory, _LEGACY_PAYLOAD_FILE)
        ) and os.path.exists(os.path.join(self.directory, _LEGACY_MANIFEST_FILE))

    @property
    def payload_path(self) -> str:
        """The latest complete pair's payload (legacy fallback, else the
        path the next write would land on)."""
        seqs = self._complete_seqs()
        if seqs:
            return self._pair(seqs[-1])[0]
        return os.path.join(self.directory, _LEGACY_PAYLOAD_FILE)

    @property
    def manifest_path(self) -> str:
        """The latest complete pair's manifest (legacy fallback)."""
        seqs = self._complete_seqs()
        if seqs:
            return self._pair(seqs[-1])[1]
        return os.path.join(self.directory, _LEGACY_MANIFEST_FILE)

    def exists(self) -> bool:
        return bool(self._complete_seqs()) or self._legacy_complete()

    # -- write + rotate ---------------------------------------------------------

    def write(self, seq: int, consumed: int, queries: Dict[str, Dict[str, Any]]) -> None:
        """Persist one barrier's state atomically, then prune old pairs.

        Payload first, manifest second (the pair is complete only once the
        manifest lands); pruning deletes manifests before their payloads so
        an interrupted prune can never leave a manifest whose pickle is
        gone.
        """
        payload = {
            "version": FORMAT_VERSION,
            "seq": seq,
            "consumed": consumed,
            "queries": queries,
        }
        try:
            blob = pickle.dumps(payload)
        except Exception as exc:
            raise CheckpointError(f"operator state is not picklable: {exc}") from exc
        payload_path, manifest_path = self._pair(seq)
        self._replace(payload_path, blob)
        manifest = {
            "version": FORMAT_VERSION,
            "seq": seq,
            "consumed": consumed,
            "queries": {
                name: {
                    "events_in": state.get("events_in"),
                    "events_out": state.get("events_out"),
                }
                for name, state in queries.items()
            },
        }
        self._replace(manifest_path, (json.dumps(manifest) + "\n").encode("utf-8"))
        self._prune(current=seq)

    def _prune(self, current: int) -> None:
        survivors = [seq for seq in self._complete_seqs() if seq != current]
        excess = len(survivors) - (self.keep - 1)
        for seq in survivors[:max(0, excess)]:
            payload_path, manifest_path = self._pair(seq)
            self._remove(manifest_path)
            self._remove(payload_path)
        if self._legacy_complete() and len(self._complete_seqs()) >= self.keep:
            # the pre-rotation pair is the oldest generation; retire it once
            # enough numbered pairs cover the keep window
            self._remove(os.path.join(self.directory, _LEGACY_MANIFEST_FILE))
            self._remove(os.path.join(self.directory, _LEGACY_PAYLOAD_FILE))

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    @staticmethod
    def _replace(path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- read -------------------------------------------------------------------

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.exists():
            return None
        with open(self.manifest_path) as handle:
            return json.load(handle)

    def load(self) -> Optional[Dict[str, Any]]:
        """The latest complete checkpoint payload, or ``None`` when none exists."""
        if not self.exists():
            return None
        with open(self.payload_path, "rb") as handle:
            try:
                payload = pickle.load(handle)
            except Exception as exc:
                raise CheckpointError(f"unreadable checkpoint payload: {exc}") from exc
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{version} does not match this build (v{FORMAT_VERSION})"
            )
        return payload
