"""Atomic operator-state checkpoints for the stream server.

A checkpoint is two files in the checkpoint directory:

* ``checkpoint.pkl`` — the pickled payload: per-query operator state (by
  pipeline position) and sink positions, plus the global ``consumed`` event
  offset the barrier was taken at;
* ``checkpoint.json`` — a small manifest (``seq``, ``consumed``, per-query
  event counters) readable without unpickling, for feeders, tests and
  humans.

Both are written to temp files and moved into place with ``os.replace``, so
a crash mid-write leaves the previous checkpoint intact.  The payload is
pickled *inside the barrier* (operator state may alias live containers) and
versioned; a future layout change bumps ``FORMAT_VERSION`` and refuses
mismatched files instead of mis-restoring them.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any, Dict, Optional

from repro.errors import CheckpointError

FORMAT_VERSION = 1

_PAYLOAD_FILE = "checkpoint.pkl"
_MANIFEST_FILE = "checkpoint.json"


class CheckpointManager:
    """Writes and reads the server's checkpoint pair in one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.payload_path = os.path.join(directory, _PAYLOAD_FILE)
        self.manifest_path = os.path.join(directory, _MANIFEST_FILE)

    def exists(self) -> bool:
        return os.path.exists(self.payload_path) and os.path.exists(self.manifest_path)

    def write(self, seq: int, consumed: int, queries: Dict[str, Dict[str, Any]]) -> None:
        """Persist one barrier's state atomically (payload first, then manifest)."""
        payload = {
            "version": FORMAT_VERSION,
            "seq": seq,
            "consumed": consumed,
            "queries": queries,
        }
        try:
            blob = pickle.dumps(payload)
        except Exception as exc:
            raise CheckpointError(f"operator state is not picklable: {exc}") from exc
        self._replace(self.payload_path, blob)
        manifest = {
            "version": FORMAT_VERSION,
            "seq": seq,
            "consumed": consumed,
            "queries": {
                name: {
                    "events_in": state.get("events_in"),
                    "events_out": state.get("events_out"),
                }
                for name, state in queries.items()
            },
        }
        self._replace(self.manifest_path, (json.dumps(manifest) + "\n").encode("utf-8"))

    @staticmethod
    def _replace(path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path) as handle:
            return json.load(handle)

    def load(self) -> Optional[Dict[str, Any]]:
        """The latest checkpoint payload, or ``None`` when none was written."""
        if not self.exists():
            return None
        with open(self.payload_path, "rb") as handle:
            try:
                payload = pickle.load(handle)
            except Exception as exc:
                raise CheckpointError(f"unreadable checkpoint payload: {exc}") from exc
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{version} does not match this build (v{FORMAT_VERSION})"
            )
        return payload
