"""Atomic, rotated operator-state checkpoints for the stream server.

A checkpoint is a pair of seq-numbered files in the checkpoint directory:

* ``checkpoint-<seq>.pkl`` — the pickled payload: per-query operator state
  (by pipeline position) and sink positions, plus the global ``consumed``
  event offset the barrier was taken at;
* ``checkpoint-<seq>.json`` — a small manifest (``seq``, ``consumed``,
  per-query event counters) readable without unpickling, for feeders,
  tests and humans.

Both are written to temp files and moved into place with ``os.replace``
(payload first, manifest last), so a pair is *complete* exactly when its
manifest exists — a crash mid-write leaves the previous complete pair
intact.  The manager keeps the last ``keep`` complete pairs and prunes
older ones manifest-first, so a crash mid-prune can leave a payload
without a manifest (ignored as incomplete) but never a manifest without
its pickle.  The payload is pickled *inside the barrier* (operator state
may alias live containers) and versioned; a future layout change bumps
``FORMAT_VERSION`` and refuses mismatched files instead of mis-restoring
them.

**Auto-recovery.**  Each manifest carries a CRC-32 of its payload pickle.
:meth:`CheckpointManager.load` resolves the generation list *once*, then
scans newest-to-oldest: a pair whose payload is missing, truncated, fails
its checksum, fails to unpickle, or carries a mismatched format version is
skipped (recorded on ``last_skipped``) and the next-oldest complete pair is
tried.  Only when *every* generation is damaged does the manager refuse with
a :class:`CheckpointError` — the pre-PR-10 behaviour, now the last resort.
Resolving the list once and re-verifying the chosen pair during the scan
also closes the prune race: a pair deleted mid-scan by a concurrent
rotation simply falls through to the next candidate instead of crashing the
restore.

Pre-rotation directories (a single unnumbered ``checkpoint.pkl``/``.json``
pair) are still readable: the legacy pair acts as the oldest generation.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.testing import faults as _faults

FORMAT_VERSION = 1

_LEGACY_PAYLOAD_FILE = "checkpoint.pkl"
_LEGACY_MANIFEST_FILE = "checkpoint.json"
_PAIR_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


class CheckpointManager:
    """Writes, rotates and reads the server's checkpoint pairs in one directory."""

    def __init__(self, directory: str, keep: int = 3) -> None:
        self.directory = directory
        self.keep = max(1, int(keep))
        # generations load() had to skip on the last scan: [(seq, reason)]
        self.last_skipped: List[Tuple[Optional[int], str]] = []
        # the generation the last successful load() actually returned
        self.last_loaded_seq: Optional[int] = None
        os.makedirs(directory, exist_ok=True)

    # -- pair discovery ---------------------------------------------------------

    def _pair(self, seq: int) -> "tuple[str, str]":
        stem = os.path.join(self.directory, f"checkpoint-{seq:08d}")
        return stem + ".pkl", stem + ".json"

    def _complete_seqs(self) -> List[int]:
        """Ascending seq numbers whose payload *and* manifest both exist."""
        seqs = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = _PAIR_RE.match(name)
            if match is None:
                continue
            seq = int(match.group(1))
            if os.path.exists(self._pair(seq)[0]):
                seqs.append(seq)
        return sorted(seqs)

    def _legacy_complete(self) -> bool:
        return os.path.exists(
            os.path.join(self.directory, _LEGACY_PAYLOAD_FILE)
        ) and os.path.exists(os.path.join(self.directory, _LEGACY_MANIFEST_FILE))

    @property
    def payload_path(self) -> str:
        """The latest complete pair's payload (legacy fallback, else the
        path the next write would land on)."""
        seqs = self._complete_seqs()
        if seqs:
            return self._pair(seqs[-1])[0]
        return os.path.join(self.directory, _LEGACY_PAYLOAD_FILE)

    @property
    def manifest_path(self) -> str:
        """The latest complete pair's manifest (legacy fallback)."""
        seqs = self._complete_seqs()
        if seqs:
            return self._pair(seqs[-1])[1]
        return os.path.join(self.directory, _LEGACY_MANIFEST_FILE)

    def exists(self) -> bool:
        return bool(self._complete_seqs()) or self._legacy_complete()

    # -- write + rotate ---------------------------------------------------------

    def write(self, seq: int, consumed: int, queries: Dict[str, Dict[str, Any]]) -> None:
        """Persist one barrier's state atomically, then prune old pairs.

        Payload first, manifest second (the pair is complete only once the
        manifest lands); pruning deletes manifests before their payloads so
        an interrupted prune can never leave a manifest whose pickle is
        gone.
        """
        payload = {
            "version": FORMAT_VERSION,
            "seq": seq,
            "consumed": consumed,
            "queries": queries,
        }
        try:
            blob = pickle.dumps(payload)
        except Exception as exc:
            raise CheckpointError(f"operator state is not picklable: {exc}") from exc
        payload_path, manifest_path = self._pair(seq)
        self._replace(payload_path, blob)
        manifest = {
            "version": FORMAT_VERSION,
            "seq": seq,
            "consumed": consumed,
            "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
            "payload_bytes": len(blob),
            "queries": {
                name: {
                    "events_in": state.get("events_in"),
                    "events_out": state.get("events_out"),
                }
                for name, state in queries.items()
            },
        }
        self._replace(manifest_path, (json.dumps(manifest) + "\n").encode("utf-8"))
        self._prune(current=seq)
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.hit(
                "checkpoint.written", path=payload_path, manifest=manifest_path, seq=seq
            )

    def _prune(self, current: int) -> None:
        survivors = [seq for seq in self._complete_seqs() if seq != current]
        excess = len(survivors) - (self.keep - 1)
        for seq in survivors[:max(0, excess)]:
            payload_path, manifest_path = self._pair(seq)
            self._remove(manifest_path)
            self._remove(payload_path)
        if self._legacy_complete() and len(self._complete_seqs()) >= self.keep:
            # the pre-rotation pair is the oldest generation; retire it once
            # enough numbered pairs cover the keep window
            self._remove(os.path.join(self.directory, _LEGACY_MANIFEST_FILE))
            self._remove(os.path.join(self.directory, _LEGACY_PAYLOAD_FILE))

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    @staticmethod
    def _replace(path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- read -------------------------------------------------------------------

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.exists():
            return None
        with open(self.manifest_path) as handle:
            return json.load(handle)

    def consumed_floor(self) -> Optional[int]:
        """The smallest ``consumed`` offset among the retained generations.

        A supervisor that keeps an in-memory replay log pruned to this floor
        can restore from *any* retained generation — including after the
        newest one turns out to be corrupt — and still cover the gap.
        """
        floors: List[int] = []
        for seq in self._complete_seqs():
            try:
                with open(self._pair(seq)[1]) as handle:
                    floors.append(int(json.load(handle)["consumed"]))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        if self._legacy_complete():
            try:
                with open(os.path.join(self.directory, _LEGACY_MANIFEST_FILE)) as handle:
                    floors.append(int(json.load(handle)["consumed"]))
            except (OSError, ValueError, KeyError, TypeError):
                pass
        return min(floors) if floors else None

    def _verify_and_load(
        self, payload_path: str, manifest_path: str
    ) -> Dict[str, Any]:
        """Load one pair, verifying size + CRC against its manifest.

        Raises :class:`CheckpointError` on any damage; the scan in
        :meth:`load` converts that into a fall-through to the next-oldest
        generation.  Re-reading the manifest here (after the candidate list
        was resolved) is what closes the prune race — a pair deleted between
        listing and loading surfaces as a clean miss, not a crash.
        """
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except FileNotFoundError as exc:
            raise CheckpointError("manifest vanished (pruned mid-scan)") from exc
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable manifest: {exc}") from exc
        try:
            with open(payload_path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError as exc:
            raise CheckpointError("payload vanished (pruned mid-scan)") from exc
        except OSError as exc:
            raise CheckpointError(f"unreadable payload: {exc}") from exc
        expected_bytes = manifest.get("payload_bytes")
        if expected_bytes is not None and len(blob) != int(expected_bytes):
            raise CheckpointError(
                f"payload is {len(blob)} bytes, manifest says {expected_bytes} (truncated?)"
            )
        expected_crc = manifest.get("crc32")
        if expected_crc is not None and (zlib.crc32(blob) & 0xFFFFFFFF) != int(expected_crc):
            raise CheckpointError("payload fails its manifest CRC-32 (corrupted)")
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(f"unreadable checkpoint payload: {exc}") from exc
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{version} does not match this build (v{FORMAT_VERSION})"
            )
        return payload

    def load(self) -> Optional[Dict[str, Any]]:
        """The newest *valid* checkpoint payload, or ``None`` when none exists.

        The generation list is resolved once, then scanned newest-to-oldest;
        damaged or mid-prune-deleted pairs are skipped (see ``last_skipped``)
        and only when every generation is unusable does the manager raise.
        """
        self.last_skipped = []
        self.last_loaded_seq = None
        candidates: List[Tuple[Optional[int], str, str]] = [
            (seq,) + self._pair(seq) for seq in reversed(self._complete_seqs())
        ]
        if self._legacy_complete():
            candidates.append(
                (
                    None,
                    os.path.join(self.directory, _LEGACY_PAYLOAD_FILE),
                    os.path.join(self.directory, _LEGACY_MANIFEST_FILE),
                )
            )
        if not candidates:
            return None
        for seq, payload_path, manifest_path in candidates:
            try:
                payload = self._verify_and_load(payload_path, manifest_path)
            except CheckpointError as exc:
                self.last_skipped.append((seq, str(exc)))
                continue
            self.last_loaded_seq = seq
            return payload
        tried = ", ".join(
            f"{'legacy' if seq is None else f'seq {seq}'}: {reason}"
            for seq, reason in self.last_skipped
        )
        raise CheckpointError(
            f"no valid checkpoint generation in {self.directory} ({tried})"
        )
