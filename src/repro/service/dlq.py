"""Per-query dead-letter queues for malformed and poison events.

A dead letter is an event the pipeline cannot make progress on: a wire line
that does not parse (routed by the server's ingestion loop), or a *poison*
record that deterministically crashes an operator (identified during
supervised replay-after-restore — see ``StreamServer``).  Instead of
aborting the query, the event is appended to
``<directory>/<query>.dlq.ndjson`` as one JSON line carrying the original
payload, a ``reason`` string and the stream offset, so an operator can
inspect, fix and optionally re-feed it later.

Writes are line-buffered append-only NDJSON — a crash mid-write loses at
most the current line, never earlier letters.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Union

from repro.streaming.record import Record

INGEST_QUEUE = "_ingest"  # the server-level queue for unparseable wire lines


class DeadLetterQueue:
    """One query's NDJSON dead-letter sink (lazily opened, append mode)."""

    def __init__(self, directory: str, query: str) -> None:
        self.directory = directory
        self.query = query
        self.path = os.path.join(directory, f"{query}.dlq.ndjson")
        self.count = 0
        self._handle = None

    def write(
        self,
        event: Union[Record, Dict[str, Any], str, bytes, None],
        reason: str,
        offset: Optional[int] = None,
    ) -> None:
        if self._handle is None:
            os.makedirs(self.directory, exist_ok=True)
            self._handle = open(self.path, "a", buffering=1)
        if isinstance(event, Record):
            payload: Any = event.as_dict()
        elif isinstance(event, bytes):
            payload = event.decode("utf-8", errors="replace")
        else:
            payload = event
        letter: Dict[str, Any] = {"query": self.query, "reason": reason, "event": payload}
        if offset is not None:
            letter["offset"] = offset
        self._handle.write(json.dumps(letter, default=str) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return f"DeadLetterQueue({self.query!r}, count={self.count})"
