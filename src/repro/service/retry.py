"""Retry and restart policies shared across the runtime and service layers.

One :class:`RetryPolicy` shape covers every reconnect/respawn loop in the
repo — exponential backoff with *decorrelated jitter* (each sleep is drawn
uniformly from ``[base, 3 * previous]``, capped), plus three independent
budgets: a maximum attempt count, a wall-clock deadline, and the cap on any
single sleep.  When the budget runs out the caller gets a
:class:`RetryExhausted` carrying the attempt count, elapsed time and the
last error (errno included) — never a bare ``ConnectionRefusedError`` with
no history.

:class:`RestartPolicy` is the supervision-side sibling: a token bucket of
"at most K restarts per rolling window", used by the stream server's
per-query supervisor and as the crash-loop breaker on pool worker respawn.

Both take injectable ``sleep``/``clock``/``rng`` so tests run them
deterministically without wall-clock waits.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Deque, Optional, Tuple, Type, Union

from collections import deque

from repro.errors import ServiceError


class RetryExhausted(ServiceError):
    """A retried operation ran out of budget; carries the full history."""

    def __init__(
        self,
        label: str,
        attempts: int,
        elapsed_s: float,
        last_error: Optional[BaseException],
    ) -> None:
        self.label = label
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.last_error = last_error
        detail = f"{label} failed after {attempts} attempt(s) in {elapsed_s:.2f}s"
        if last_error is not None:
            errno = getattr(last_error, "errno", None)
            if errno is not None:
                detail += f" (last error: {type(last_error).__name__} errno={errno}: {last_error})"
            else:
                detail += f" (last error: {type(last_error).__name__}: {last_error})"
        super().__init__(detail)


class RetryPolicy:
    """Exponential backoff with decorrelated jitter, cap, deadline and budget.

    ``max_attempts=None`` / ``deadline_s=None`` disable that budget (but at
    least one should be set — both unset retries forever).  The jitter RNG
    defaults to a private seeded generator so a policy's sleep sequence is
    reproducible; pass ``rng=random.Random()`` for production entropy or a
    fixed-seed instance for deterministic tests.
    """

    def __init__(
        self,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        max_attempts: Optional[int] = 20,
        deadline_s: Optional[float] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = max(self.base_delay_s, float(max_delay_s))
        self.max_attempts = None if max_attempts is None else max(1, int(max_attempts))
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.rng = rng if rng is not None else random.Random(0x5EED)
        self.sleep = sleep
        self.clock = clock

    def next_delay(self, previous: Optional[float]) -> float:
        """One decorrelated-jitter step: uniform in [base, 3*previous], capped."""
        if previous is None:
            return self.base_delay_s
        upper = min(self.max_delay_s, max(self.base_delay_s, previous * 3.0))
        return self.rng.uniform(self.base_delay_s, upper)

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Union[Type[BaseException], Tuple[Type[BaseException], ...]] = (OSError,),
        label: str = "operation",
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Run ``fn`` until it succeeds or the budget is spent.

        Retries only exceptions matching ``retry_on``; anything else
        propagates immediately.  Raises :class:`RetryExhausted` when the
        attempt or deadline budget runs out.
        """
        start = self.clock()
        attempts = 0
        delay: Optional[float] = None
        while True:
            attempts += 1
            try:
                return fn()
            except retry_on as exc:
                elapsed = self.clock() - start
                out_of_attempts = (
                    self.max_attempts is not None and attempts >= self.max_attempts
                )
                past_deadline = self.deadline_s is not None and elapsed >= self.deadline_s
                if out_of_attempts or past_deadline:
                    raise RetryExhausted(label, attempts, elapsed, exc) from exc
                if on_retry is not None:
                    on_retry(attempts, exc)
                delay = self.next_delay(delay)
                if self.deadline_s is not None:
                    delay = min(delay, max(0.0, self.deadline_s - elapsed))
                self.sleep(delay)


class RestartPolicy:
    """At most ``max_restarts`` restarts per rolling ``window_s`` seconds.

    ``admit()`` consumes one restart credit when available (recording the
    attempt) and returns ``False`` once the window is saturated — the
    caller's cue to stop healing and declare the subject degraded.
    ``window_s=None`` makes the budget lifetime-total instead of rolling.
    """

    def __init__(
        self,
        max_restarts: int = 3,
        window_s: Optional[float] = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.max_restarts = int(max_restarts)
        self.window_s = None if window_s is None else float(window_s)
        self.clock = clock

    @classmethod
    def parse(cls, text: str) -> "RestartPolicy":
        """Parse the CLI form ``"K/W"`` (K restarts per W seconds) or ``"K"``."""
        text = text.strip()
        try:
            if "/" in text:
                count, window = text.split("/", 1)
                return cls(int(count), float(window.rstrip("s")))
            return cls(int(text), None)
        except (ValueError, TypeError) as exc:
            raise ServiceError(
                f"bad restart policy {text!r}; expected 'K' or 'K/WINDOW_SECONDS'"
            ) from exc

    def admit(self, history: Deque[float]) -> bool:
        """Record-and-check one restart against a caller-owned timestamp log."""
        now = self.clock()
        if self.window_s is not None:
            while history and now - history[0] > self.window_s:
                history.popleft()
        if len(history) >= self.max_restarts:
            return False
        history.append(now)
        return True

    def new_history(self) -> Deque[float]:
        return deque()

    def describe(self) -> str:
        if self.window_s is None:
            return f"{self.max_restarts} restarts total"
        return f"{self.max_restarts} restarts per {self.window_s:g}s"
