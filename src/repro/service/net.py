"""TCP NDJSON sources, sinks and the client feeder.

The wire protocol is one JSON object per line.  An object whose
``__control__`` field is set is a control message, not an event; the only
control message today is ``{"__control__": "eos"}``, which marks the end of
the logical stream (client EOF alone does *not* — other clients may still be
feeding).  Event objects must carry a ``timestamp`` field (or be fed to a
:class:`SocketSource` whose schema says otherwise — the payload is passed to
:class:`~repro.streaming.record.Record` verbatim).

:class:`SocketSource` and :class:`SocketSink` are synchronous and slot in
next to :class:`~repro.streaming.source.ListSource` behind the existing
``Source``/``Sink`` contracts, so any engine can replay straight off a
socket; the asyncio :class:`~repro.service.server.StreamServer` speaks the
same protocol with its own reader.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from repro.errors import ServiceError
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.sink import Sink
from repro.streaming.source import Source

CONTROL_FIELD = "__control__"
EOS = "eos"


def encode_event(payload: Dict[str, Any]) -> bytes:
    """One NDJSON wire line (newline-terminated, UTF-8) for an event payload."""
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def encode_control(kind: str) -> bytes:
    return (json.dumps({CONTROL_FIELD: kind}) + "\n").encode("utf-8")


def parse_line(line: Union[str, bytes]) -> Union[Record, Dict[str, Any], None]:
    """Decode one wire line: a :class:`Record`, a control dict, or ``None``.

    Blank lines decode to ``None`` (keep-alive / trailing newline).  Raises
    :class:`ServiceError` on malformed JSON or an event without a timestamp.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed NDJSON line: {line[:120]!r}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(f"NDJSON line is not an object: {line[:120]!r}")
    if CONTROL_FIELD in payload:
        return payload
    try:
        return Record(payload)
    except Exception as exc:
        raise ServiceError(f"bad event line: {exc}") from exc


class SocketSource(Source):
    """Pull-based source reading NDJSON events from a TCP peer.

    ``mode="connect"`` (default) dials ``host:port``; ``mode="listen"`` binds
    the address and serves exactly one inbound connection (handy for tests
    and for pointing a feeder at a plain `run`).  Iteration ends at the
    ``eos`` control line or at EOF.
    """

    def __init__(
        self,
        schema: Schema,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "socket",
        mode: str = "connect",
        connect_retries: int = 20,
        retry_delay_s: float = 0.05,
    ) -> None:
        if mode not in ("connect", "listen"):
            raise ServiceError(f"unknown SocketSource mode {mode!r}")
        super().__init__(schema, name)
        self.host = host
        self.port = port
        self.mode = mode
        self.connect_retries = int(connect_retries)
        self.retry_delay_s = float(retry_delay_s)
        self._listener: Optional[socket.socket] = None
        if mode == "listen":
            self._listener = socket.create_server((host, port))
            self.port = self._listener.getsockname()[1]

    def _open(self) -> socket.socket:
        if self._listener is not None:
            conn, _ = self._listener.accept()
            return conn
        last_error: Optional[Exception] = None
        for _ in range(max(1, self.connect_retries)):
            try:
                return socket.create_connection((self.host, self.port))
            except OSError as exc:
                last_error = exc
                time.sleep(self.retry_delay_s)
        raise ServiceError(
            f"could not connect to {self.host}:{self.port}: {last_error}"
        ) from last_error

    def records(self) -> Iterator[Record]:
        conn = self._open()
        try:
            with conn.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    parsed = parse_line(line)
                    if parsed is None:
                        continue
                    if isinstance(parsed, dict):
                        if parsed.get(CONTROL_FIELD) == EOS:
                            return
                        continue
                    yield parsed
        finally:
            conn.close()
            if self._listener is not None:
                self._listener.close()
                self._listener = None


class SocketSink(Sink):
    """Pushes output records to a TCP peer as NDJSON lines."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_retries: int = 20,
        retry_delay_s: float = 0.05,
        send_eos: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.send_eos = send_eos
        self.count = 0
        last_error: Optional[Exception] = None
        self._conn: Optional[socket.socket] = None
        for _ in range(max(1, int(connect_retries))):
            try:
                self._conn = socket.create_connection((host, port))
                break
            except OSError as exc:
                last_error = exc
                time.sleep(retry_delay_s)
        if self._conn is None:
            raise ServiceError(
                f"could not connect to {host}:{port}: {last_error}"
            ) from last_error

    def accept(self, record: Record) -> None:
        assert self._conn is not None
        self.count += 1
        self._conn.sendall(encode_event(record.as_dict()))

    def close(self) -> None:
        if self._conn is None:
            return
        try:
            if self.send_eos:
                self._conn.sendall(encode_control(EOS))
        except OSError:
            pass
        self._conn.close()
        self._conn = None


def feed_events(
    host: str,
    port: int,
    events: Iterable[Union[Record, Dict[str, Any]]],
    eps: Optional[float] = None,
    eos: bool = True,
    connect_retries: int = 40,
    retry_delay_s: float = 0.05,
) -> int:
    """Replay events into a listening server over one TCP connection.

    ``eps`` paces the replay (events per second, wall clock); ``None`` sends
    as fast as the socket accepts.  Returns the number of events sent.
    The connection is retried so a feeder started alongside `serve` need not
    race its bind.
    """
    last_error: Optional[Exception] = None
    conn: Optional[socket.socket] = None
    for _ in range(max(1, int(connect_retries))):
        try:
            conn = socket.create_connection((host, port))
            break
        except OSError as exc:
            last_error = exc
            time.sleep(retry_delay_s)
    if conn is None:
        raise ServiceError(f"could not connect to {host}:{port}: {last_error}") from last_error
    sent = 0
    interval = (1.0 / eps) if eps else 0.0
    next_send = time.monotonic()
    try:
        for event in events:
            payload = event.as_dict() if isinstance(event, Record) else dict(event)
            if interval:
                now = time.monotonic()
                if now < next_send:
                    time.sleep(next_send - now)
                next_send += interval
            conn.sendall(encode_event(payload))
            sent += 1
        if eos:
            conn.sendall(encode_control(EOS))
    finally:
        conn.close()
    return sent
