"""TCP NDJSON sources, sinks and the client feeder.

The wire protocol is one JSON object per line.  An object whose
``__control__`` field is set is a control message, not an event; the only
control message today is ``{"__control__": "eos"}``, which marks the end of
the logical stream (client EOF alone does *not* — other clients may still be
feeding).  Event objects must carry a ``timestamp`` field (or be fed to a
:class:`SocketSource` whose schema says otherwise — the payload is passed to
:class:`~repro.streaming.record.Record` verbatim).

:class:`SocketSource` and :class:`SocketSink` are synchronous and slot in
next to :class:`~repro.streaming.source.ListSource` behind the existing
``Source``/``Sink`` contracts, so any engine can replay straight off a
socket; the asyncio :class:`~repro.service.server.StreamServer` speaks the
same protocol with its own reader.

Further control messages support self-healing feeds: a feeder that opens
with ``{"__control__": "hello", "session": <id>}`` gets back
``{"__control__": "resume", "offset": N}`` — the count of events the server
has already ingested on that session — so a reconnect after a mid-feed
disconnect *resumes from the last acknowledged offset* instead of
re-sending (or worse, skipping) events.  ``{"__control__": "health"}``
returns the server's per-query supervision status as one JSON line.

Every connect loop here runs on the shared
:class:`~repro.service.retry.RetryPolicy` (exponential backoff, decorrelated
jitter, cap, deadline); an exhausted budget surfaces a
:class:`~repro.service.retry.RetryExhausted` carrying attempts, elapsed time
and the last errno instead of a bare ``ConnectionRefusedError``.
"""

from __future__ import annotations

import json
import socket
import uuid
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import ServiceError
from repro.service.retry import RetryPolicy
from repro.streaming.record import Record
from repro.streaming.schema import Schema
from repro.streaming.sink import Sink
from repro.streaming.source import Source
from repro.testing import faults as _faults

CONTROL_FIELD = "__control__"
EOS = "eos"
HELLO = "hello"
RESUME = "resume"
HEALTH = "health"


def _connect_policy(
    retries: int, delay_s: float, deadline_s: Optional[float] = None
) -> RetryPolicy:
    """The default connect policy, shaped from the legacy retry knobs."""
    return RetryPolicy(
        base_delay_s=max(1e-4, float(delay_s)),
        max_delay_s=max(0.25, float(delay_s) * 8),
        max_attempts=max(1, int(retries)),
        deadline_s=deadline_s,
    )


def encode_event(payload: Dict[str, Any]) -> bytes:
    """One NDJSON wire line (newline-terminated, UTF-8) for an event payload."""
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def encode_control(kind: str) -> bytes:
    return (json.dumps({CONTROL_FIELD: kind}) + "\n").encode("utf-8")


def parse_line(line: Union[str, bytes]) -> Union[Record, Dict[str, Any], None]:
    """Decode one wire line: a :class:`Record`, a control dict, or ``None``.

    Blank lines decode to ``None`` (keep-alive / trailing newline).  Raises
    :class:`ServiceError` on malformed JSON or an event without a timestamp.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed NDJSON line: {line[:120]!r}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(f"NDJSON line is not an object: {line[:120]!r}")
    if CONTROL_FIELD in payload:
        return payload
    try:
        return Record(payload)
    except Exception as exc:
        raise ServiceError(f"bad event line: {exc}") from exc


class SocketSource(Source):
    """Pull-based source reading NDJSON events from a TCP peer.

    ``mode="connect"`` (default) dials ``host:port``; ``mode="listen"`` binds
    the address and serves exactly one inbound connection (handy for tests
    and for pointing a feeder at a plain `run`).  Iteration ends at the
    ``eos`` control line or at EOF.
    """

    def __init__(
        self,
        schema: Schema,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "socket",
        mode: str = "connect",
        connect_retries: int = 20,
        retry_delay_s: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if mode not in ("connect", "listen"):
            raise ServiceError(f"unknown SocketSource mode {mode!r}")
        super().__init__(schema, name)
        self.host = host
        self.port = port
        self.mode = mode
        self.retry_policy = retry_policy or _connect_policy(connect_retries, retry_delay_s)
        self._listener: Optional[socket.socket] = None
        if mode == "listen":
            self._listener = socket.create_server((host, port))
            self.port = self._listener.getsockname()[1]

    def _open(self) -> socket.socket:
        if self._listener is not None:
            conn, _ = self._listener.accept()
            return conn
        return self.retry_policy.call(
            lambda: socket.create_connection((self.host, self.port)),
            retry_on=(OSError,),
            label=f"connect to {self.host}:{self.port}",
        )

    def records(self) -> Iterator[Record]:
        conn = self._open()
        try:
            with conn.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    parsed = parse_line(line)
                    if parsed is None:
                        continue
                    if isinstance(parsed, dict):
                        if parsed.get(CONTROL_FIELD) == EOS:
                            return
                        continue
                    if _faults.ACTIVE is not None:
                        _faults.ACTIVE.hit("socket.source.event", source=self.name)
                    yield parsed
        finally:
            conn.close()
            if self._listener is not None:
                self._listener.close()
                self._listener = None


class SocketSink(Sink):
    """Pushes output records to a TCP peer as NDJSON lines."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_retries: int = 20,
        retry_delay_s: float = 0.05,
        send_eos: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.send_eos = send_eos
        self.count = 0
        policy = retry_policy or _connect_policy(connect_retries, retry_delay_s)
        self._conn: Optional[socket.socket] = policy.call(
            lambda: socket.create_connection((host, port)),
            retry_on=(OSError,),
            label=f"connect to {host}:{port}",
        )

    def accept(self, record: Record) -> None:
        assert self._conn is not None
        self.count += 1
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.hit("socket.sink.event")
        self._conn.sendall(encode_event(record.as_dict()))

    def close(self) -> None:
        if self._conn is None:
            return
        try:
            if self.send_eos:
                self._conn.sendall(encode_control(EOS))
        except OSError:
            pass
        self._conn.close()
        self._conn = None


def request_health(
    host: str,
    port: int,
    connect_retries: int = 40,
    retry_delay_s: float = 0.05,
) -> Dict[str, Any]:
    """Ask a running server for its supervision status over the wire.

    Sends ``{"__control__": "health"}`` on a fresh connection and returns
    the decoded one-line JSON reply (per-query status, restart counts, DLQ
    depths, consumed offset).
    """
    policy = _connect_policy(connect_retries, retry_delay_s)
    conn = policy.call(
        lambda: socket.create_connection((host, port)),
        retry_on=(OSError,),
        label=f"connect to {host}:{port}",
    )
    try:
        conn.sendall(encode_control(HEALTH))
        with conn.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    finally:
        conn.close()
    if not line:
        raise ServiceError("server closed the connection without a health reply")
    reply = json.loads(line)
    if reply.get(CONTROL_FIELD) != HEALTH:
        raise ServiceError(f"unexpected health reply: {line[:200]!r}")
    return reply


def feed_events(
    host: str,
    port: int,
    events: Iterable[Union[Record, Dict[str, Any]]],
    eps: Optional[float] = None,
    eos: bool = True,
    connect_retries: int = 40,
    retry_delay_s: float = 0.05,
    session: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    max_reconnects: int = 20,
) -> int:
    """Replay events into a listening server, surviving disconnects.

    ``eps`` paces the replay (events per second, wall clock); ``None`` sends
    as fast as the socket accepts.  Returns the number of events sent.  The
    initial connection runs on the shared :class:`RetryPolicy`, so a feeder
    started alongside `serve` need not race its bind.

    ``session`` arms *reconnect-and-resume*: the feeder opens with a
    ``hello`` control line and the server replies with the count of events
    it has already ingested on that session.  A connection lost mid-feed is
    re-dialed (same policy) and the replay resumes from the server's
    acknowledged offset — events the server consumed are never re-sent, and
    events lost in flight are.  ``session="auto"`` generates a fresh id.
    Without a session, a mid-feed disconnect raises a :class:`ServiceError`
    (resuming blind could duplicate or drop events).
    """
    import time

    if session == "auto":
        session = uuid.uuid4().hex
    policy = retry_policy or _connect_policy(connect_retries, retry_delay_s)
    batch: List[Union[Record, Dict[str, Any]]] = (
        events if isinstance(events, list) else list(events)
    )
    interval = (1.0 / eps) if eps else 0.0
    next_send = time.monotonic()
    reconnects = 0
    sent = 0

    def _dial() -> socket.socket:
        return policy.call(
            lambda: socket.create_connection((host, port)),
            retry_on=(OSError,),
            label=f"connect to {host}:{port}",
        )

    while True:
        conn = _dial()
        try:
            offset = sent
            if session is not None:
                conn.sendall(
                    (json.dumps({CONTROL_FIELD: HELLO, "session": session}) + "\n").encode(
                        "utf-8"
                    )
                )
                reply = conn.makefile("r", encoding="utf-8").readline()
                if not reply:
                    raise ConnectionResetError("server closed before resume reply")
                parsed = json.loads(reply)
                if parsed.get(CONTROL_FIELD) != RESUME:
                    raise ServiceError(
                        f"expected a resume reply to hello, got {reply[:120]!r}"
                    )
                offset = int(parsed.get("offset", 0))
            for index in range(offset, len(batch)):
                event = batch[index]
                payload = event.as_dict() if isinstance(event, Record) else dict(event)
                if interval:
                    now = time.monotonic()
                    if now < next_send:
                        time.sleep(next_send - now)
                    next_send += interval
                if _faults.ACTIVE is not None:
                    _faults.ACTIVE.hit("feed.event", index=index)
                conn.sendall(encode_event(payload))
                sent = index + 1
            sent = max(sent, len(batch))
            if eos:
                conn.sendall(encode_control(EOS))
            return sent
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            if session is None:
                raise ServiceError(
                    f"feed to {host}:{port} lost after {sent} events: {exc} "
                    "(pass session=... for reconnect-and-resume)"
                ) from exc
            reconnects += 1
            if reconnects > max_reconnects:
                raise ServiceError(
                    f"feed to {host}:{port} gave up after {reconnects - 1} reconnects: {exc}"
                ) from exc
        finally:
            try:
                conn.close()
            except OSError:
                pass
