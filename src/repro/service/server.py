"""The long-running stream server: asyncio ingestion, fan-out, checkpoints.

One asyncio TCP listener accepts any number of NDJSON feeders.  Every event
line is parsed into a :class:`~repro.streaming.record.Record` exactly once
and fanned out to the per-query ingest queues — N registered queries share
one ingestion path instead of re-parsing the feed N times.  Each query runs
in its own worker coroutine on a :class:`~repro.service.runner.QueryRunner`
(record or batch engine machinery underneath).

**Backpressure** closes the loop over the live metrics bus: the server
registers a ``service_queue_depth`` gauge on every runner's bus and
subscribes a controller to the snapshots; when a snapshot reports the depth
at or above ``high_watermark`` the socket readers pause (a cleared
``asyncio.Event`` gates every ``readline``), and the workers — which keep
draining and therefore keep ticking the bus — resume the readers once the
backlog falls to ``low_watermark``.  Load shedding and adaptive batch
sizing hook into the same snapshots per query (``shed_target_eps`` /
``adaptive_batch`` at registration).

**Checkpoints** are barrier-style: pause ingestion, drain every queue and
partial batch, snapshot all operator state plus each sink's position and
the global ``consumed`` offset, write atomically
(:class:`~repro.service.checkpoint.CheckpointManager`), resume.  A server
started with ``resume=True`` restores that state and discards the first
``consumed`` events of the (re-played) feed, so its sinks continue exactly
where the checkpoint left off — byte-identical to a run that never died.

**Supervision** (``restart_policy``) turns a crashing query from fatal into
self-healing.  The server keeps an in-memory *replay log* of fanned-out
events, pruned after each checkpoint to the oldest retained generation's
``consumed`` offset.  When a runner raises, the supervisor restores it from
the newest *valid* checkpoint (scanning past corrupt generations — see the
checkpoint manager) or from its pristine pre-event snapshot, then replays
the retained gap record-at-a-time, so the query's cumulative sink output is
byte-identical to a run that never crashed.  A record that crashes the
runner *again* during replay is poison: it goes to the query's dead-letter
queue (``dlq_dir``), its offset joins a skip set, and the restore-and-replay
loop runs once more without it.  The :class:`~repro.service.retry.RestartPolicy`
bounds healing to K restarts per rolling window; past the budget the query
is marked ``degraded`` (aborted, sinks closed) while sibling queries keep
producing.  ``{"__control__": "health"}`` reports all of this over the wire.

**Sessions** make feeders resumable: a connection that opens with
``{"__control__": "hello", "session": id}`` gets back the count of events
the server already ingested on that session, and each ``hello`` bumps the
session's epoch so an event still in flight on a superseded connection is
dropped instead of double-ingested.

Malformed wire lines never abort a connection or a query: they are counted
(``malformed``) and routed to the server-level ``_ingest`` dead-letter
queue when ``dlq_dir`` is set.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, Union

from repro.errors import CheckpointError, ServiceError
from repro.service.checkpoint import CheckpointManager
from repro.service.dlq import INGEST_QUEUE, DeadLetterQueue
from repro.service.net import CONTROL_FIELD, EOS, HEALTH, HELLO, RESUME, parse_line
from repro.service.retry import RestartPolicy
from repro.service.runner import QueryRunner
from repro.streaming.query import Query
from repro.streaming.record import Record
from repro.testing import faults as _faults

_STOP = object()  # queue sentinel: worker exits without flushing
_FLUSH = object()  # queue sentinel: end-of-stream, worker flushes the runner

# _Registration.status values
RUNNING = "running"
DEGRADED = "degraded"  # restart budget exhausted; aborted, siblings unaffected
FAILED = "failed"  # crashed with no restart policy armed (legacy behaviour)


class _Registration:
    def __init__(self, runner: QueryRunner) -> None:
        self.runner = runner
        # items are (offset, Record) tuples or the _STOP/_FLUSH sentinels
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.sizer = None
        self.error: Optional[BaseException] = None
        self.status = RUNNING
        self.restarts = 0
        self.restart_history: Deque[float] = deque()
        self.delivered = 0  # offset of the last record dequeued by the worker
        self.skip_offsets: Set[int] = set()  # poison records excluded from replay
        self.dlq: Optional[DeadLetterQueue] = None


class StreamServer:
    """N continuous queries over one TCP NDJSON feed, in one process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        high_watermark: int = 10_000,
        low_watermark: int = 1_000,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval_events: int = 0,
        checkpoint_keep: int = 3,
        resume: bool = False,
        stop_after_eos: bool = False,
        restart_policy: Optional[Union[RestartPolicy, str]] = None,
        dlq_dir: Optional[str] = None,
    ) -> None:
        if low_watermark > high_watermark:
            raise ServiceError("low_watermark must not exceed high_watermark")
        self.host = host
        self.port = port
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.checkpoint_interval_events = int(checkpoint_interval_events)
        self.stop_after_eos = stop_after_eos
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, keep=checkpoint_keep)
            if checkpoint_dir
            else None
        )
        self.resume = resume
        if isinstance(restart_policy, str):
            restart_policy = RestartPolicy.parse(restart_policy)
        self.restart_policy = restart_policy
        self.dlq_dir = dlq_dir
        self.consumed = 0  # events fanned out over the server's lifetime (incl. restored)
        self.eos_seen = False
        self.paused = False
        self.checkpoint_seq = 0
        self.malformed = 0  # wire lines that did not parse (counted, never fatal)
        self._skip = 0
        self._since_checkpoint = 0
        self._registrations: Dict[str, _Registration] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._resume_gate = asyncio.Event()
        self._resume_gate.set()
        self._stopped = asyncio.Event()
        self._checkpoint_lock = asyncio.Lock()
        self._stopping = False
        # replay log for supervised restarts: (offset, record), pruned after
        # each checkpoint to the oldest retained generation's consumed offset
        self._replay: Optional[Deque[Tuple[int, Record]]] = (
            deque() if restart_policy is not None else None
        )
        self._replay_floor = 0
        # feeder sessions: id -> {"count": events ingested, "epoch": hello count}
        self._sessions: Dict[str, Dict[str, int]] = {}
        self._ingest_dlq = (
            DeadLetterQueue(dlq_dir, INGEST_QUEUE) if dlq_dir else None
        )

    # -- registration ----------------------------------------------------------------

    def register(
        self,
        name: str,
        query: "Query",
        mode: str = "record",
        batch_size: int = 256,
        metric_bus=None,
        shed_target_eps: Optional[float] = None,
        adaptive_batch: bool = False,
        pool=None,
        partitions: int = 1,
        partition_key: str = "device_id",
    ) -> QueryRunner:
        """Add a continuous query.  Must be called before :meth:`start`.

        ``pool`` + ``partitions > 1`` shards a batch-mode query across the
        pool's resident worker processes (see :class:`QueryRunner`).
        """
        if self._server is not None:
            raise ServiceError("register queries before starting the server")
        if name in self._registrations:
            raise ServiceError(f"a query named {name!r} is already registered")
        runner = QueryRunner(
            name,
            query,
            mode=mode,
            batch_size=batch_size,
            metric_bus=metric_bus,
            shed_target_eps=shed_target_eps,
            pool=pool,
            partitions=partitions,
            partition_key=partition_key,
        )
        registration = _Registration(runner)
        if self.dlq_dir:
            registration.dlq = DeadLetterQueue(self.dlq_dir, name)
        bus = runner.metrics.bus
        if bus is not None:
            bus.set_gauge("service_queue_depth", lambda r=registration: r.queue.qsize())
            bus.subscribe(self._backpressure_subscriber(registration))
            if adaptive_batch and mode == "batch":
                from repro.streaming.adaptivity import AdaptiveBatchSizer

                registration.sizer = bus.subscribe(AdaptiveBatchSizer(runner))
        self._registrations[name] = registration
        return runner

    @property
    def runners(self) -> List[QueryRunner]:
        return [r.runner for r in self._registrations.values()]

    @property
    def errors(self) -> Dict[str, BaseException]:
        """Per-query failures (a raising operator kills only its query)."""
        return {
            name: registration.error
            for name, registration in self._registrations.items()
            if registration.error is not None
        }

    def health(self) -> Dict[str, Any]:
        """Supervision status: per-query state, restarts, counters, DLQ depths."""
        queries: Dict[str, Any] = {}
        for name, registration in self._registrations.items():
            queries[name] = {
                "status": registration.status,
                "restarts": registration.restarts,
                "events_in": registration.runner.metrics.events_in,
                "events_out": registration.runner.events_out,
                "dlq": registration.dlq.count if registration.dlq is not None else 0,
                "error": (
                    str(registration.error) if registration.error is not None else None
                ),
            }
        return {
            "consumed": self.consumed,
            "malformed": self.malformed,
            "paused": self.paused,
            "checkpoint_seq": self.checkpoint_seq,
            "restart_policy": (
                self.restart_policy.describe() if self.restart_policy else None
            ),
            "queries": queries,
        }

    # -- backpressure ----------------------------------------------------------------

    def _backpressure_subscriber(self, registration: _Registration):
        def on_snapshot(snapshot) -> None:
            depth = snapshot.gauges.get("service_queue_depth")
            if depth is None:
                return
            if depth >= self.high_watermark:
                self._pause()
            elif self.paused and self._total_queued() <= self.low_watermark:
                self._resume()

        return on_snapshot

    def _total_queued(self) -> int:
        return sum(r.queue.qsize() for r in self._registrations.values())

    def _pause(self) -> None:
        if not self.paused:
            self.paused = True
            self._resume_gate.clear()

    def _resume(self) -> None:
        if self.paused and not self._stopping:
            self.paused = False
            self._resume_gate.set()

    def _after_drain(self) -> None:
        """Worker-side resume check: release readers once the backlog clears.

        Resume is drain-driven (not only snapshot-driven) so a paused server
        with too few remaining records to trigger another snapshot can never
        deadlock.
        """
        if self.paused and self._total_queued() <= self.low_watermark:
            self._resume()

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        """Restore from the checkpoint (when resuming), bind, spawn workers."""
        if not self._registrations:
            raise ServiceError("no queries registered")
        if self.resume and self.checkpoints is not None:
            payload = self.checkpoints.load()
            if payload is not None:
                self._apply_checkpoint(payload)
        for registration in self._registrations.values():
            registration.task = asyncio.create_task(self._worker(registration))
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def _apply_checkpoint(self, payload: Dict[str, Any]) -> None:
        queries = payload["queries"]
        unknown = set(queries) - set(self._registrations)
        if unknown:
            raise ServiceError(
                f"checkpoint carries queries {sorted(unknown)} that are not registered"
            )
        for name, state in queries.items():
            self._registrations[name].runner.restore_state(state)
        self.consumed = int(payload["consumed"])
        self._skip = self.consumed
        self.checkpoint_seq = int(payload["seq"])
        self._replay_floor = self.consumed

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_id: Optional[str] = None
        epoch = 0
        try:
            while True:
                await self._resume_gate.wait()
                line = await reader.readline()
                if not line:
                    break
                try:
                    parsed = parse_line(line)
                except ServiceError as exc:
                    self.malformed += 1
                    if self._ingest_dlq is not None:
                        self._ingest_dlq.write(line, str(exc))
                    continue
                if parsed is None:
                    continue
                if isinstance(parsed, dict):
                    kind = parsed.get(CONTROL_FIELD)
                    if kind == EOS:
                        await self._on_eos()
                    elif kind == HELLO:
                        session_id = str(parsed.get("session", ""))
                        session = self._sessions.setdefault(
                            session_id, {"count": 0, "epoch": 0}
                        )
                        session["epoch"] += 1
                        epoch = session["epoch"]
                        writer.write(
                            (
                                json.dumps(
                                    {CONTROL_FIELD: RESUME, "offset": session["count"]}
                                )
                                + "\n"
                            ).encode("utf-8")
                        )
                        await writer.drain()
                    elif kind == HEALTH:
                        reply = self.health()
                        reply[CONTROL_FIELD] = HEALTH
                        writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                        await writer.drain()
                    continue
                if session_id is not None:
                    session = self._sessions[session_id]
                    if session["epoch"] != epoch:
                        # a newer hello superseded this connection; dropping the
                        # stale tail is what makes the resume offset exact
                        continue
                    # count before the await: a hello arriving while _ingest is
                    # suspended must see this event as already consumed, or the
                    # resume offset would re-send it (duplicate)
                    session["count"] += 1
                    await self._ingest(parsed)
                else:
                    await self._ingest(parsed)
        finally:
            writer.close()

    async def _ingest(self, record: Record) -> None:
        if self.eos_seen or self._stopping:
            return
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.hit("server.ingest", offset=self.consumed + 1)
        if self._skip > 0:
            # resumed server: this prefix of the replayed feed is already in
            # the restored state and the rewound sinks
            self._skip -= 1
            return
        self.consumed += 1
        offset = self.consumed
        for registration in self._registrations.values():
            registration.queue.put_nowait((offset, record))
        if self._replay is not None:
            self._replay.append((offset, record))
        self._since_checkpoint += 1
        if (
            self.checkpoints is not None
            and self.checkpoint_interval_events > 0
            and self._since_checkpoint >= self.checkpoint_interval_events
        ):
            await self.checkpoint()
        else:
            # one cooperative yield per line keeps workers fed while a
            # fast feeder saturates the reader
            await asyncio.sleep(0)

    async def _on_eos(self) -> None:
        if self.eos_seen:
            return
        self.eos_seen = True
        for registration in self._registrations.values():
            registration.queue.put_nowait(_FLUSH)
        if self.stop_after_eos:
            await self._join_queues()
            self._stopped.set()

    async def _worker(self, registration: _Registration) -> None:
        """Drain one query's ingest queue into its runner.

        A raising operator poisons only its own query.  With a restart
        policy armed the supervisor restores and replays (see
        :meth:`_supervise`); without one the runner is aborted (final
        snapshot emitted) and its sinks closed.  Either way the worker keeps
        consuming — and acknowledging — queue items so barrier drains and
        sibling queries are unaffected.
        """
        queue = registration.queue
        runner = registration.runner
        while True:
            item = await queue.get()
            finishing = False
            try:
                if item is _STOP:
                    return
                if item is _FLUSH:
                    finishing = True
                    if registration.status == RUNNING:
                        runner.finish()
                        runner.flush_sinks()
                else:
                    offset, record = item
                    registration.delivered = offset
                    if (
                        registration.status == RUNNING
                        and offset not in registration.skip_offsets
                    ):
                        if _faults.ACTIVE is not None:
                            _faults.ACTIVE.hit(
                                "server.worker", query=runner.name, offset=offset
                            )
                        runner.process(record)
            except Exception as exc:
                self._supervise(registration, exc, finishing=finishing)
            finally:
                queue.task_done()
            self._after_drain()

    # -- supervision -----------------------------------------------------------------

    def _supervise(
        self, registration: _Registration, exc: BaseException, finishing: bool = False
    ) -> None:
        """Heal one crashed query, or declare it failed/degraded.

        Restore-and-replay repeats while restarts keep failing and the
        :class:`RestartPolicy` still admits them; the budget exhausted, the
        query is aborted and marked ``degraded`` — siblings keep running.
        """
        runner = registration.runner
        registration.error = exc
        if self.restart_policy is None:
            registration.status = FAILED
            runner.abort()
            runner.close_sinks()
            return
        while True:
            if not self.restart_policy.admit(registration.restart_history):
                registration.status = DEGRADED
                runner.abort()
                runner.close_sinks()
                return
            registration.restarts += 1
            try:
                self._restart(registration)
                if finishing:
                    runner.finish()
                    runner.flush_sinks()
            except Exception as retry_exc:
                registration.error = retry_exc
                continue
            registration.error = None
            registration.status = RUNNING
            return

    def _restart(self, registration: _Registration) -> None:
        """Restore from the newest valid checkpoint (or pristine) and replay.

        Replay runs record-at-a-time with a drain after each record — batch
        boundaries never change *which* records come out, so the early
        boundaries preserve output parity while isolating exactly which
        record is poison.  A record that crashes the restored runner is
        dead-lettered, added to the skip set, and the restore-and-replay
        loop runs again without it, so one poison event can never wedge the
        query.
        """
        runner = registration.runner
        state, base = self._restore_source(runner.name)
        if base < self._replay_floor:
            raise ServiceError(
                f"cannot restart {runner.name!r}: newest valid checkpoint is at "
                f"offset {base} but the replay log starts after {self._replay_floor}"
            )
        upto = registration.delivered
        replay = list(self._replay) if self._replay is not None else []
        while True:
            self._revive(runner, state)
            poison: Optional[Tuple[int, Record, BaseException]] = None
            for offset, record in replay:
                if (
                    offset <= base
                    or offset > upto
                    or offset in registration.skip_offsets
                ):
                    continue
                try:
                    runner.process(record)
                    runner.drain()
                except Exception as replay_exc:
                    poison = (offset, record, replay_exc)
                    break
            if poison is None:
                return
            offset, record, replay_exc = poison
            registration.skip_offsets.add(offset)
            if registration.dlq is not None:
                registration.dlq.write(
                    record, f"poison record: {replay_exc}", offset=offset
                )

    def _restore_source(self, name: str) -> Tuple[Optional[Dict[str, Any]], int]:
        """(per-query checkpoint state, consumed offset) to restart from.

        ``(None, 0)`` means restart pristine and replay everything retained
        — the path when no checkpoint exists, every generation is damaged,
        or the query was not in the checkpoint.
        """
        if self.checkpoints is None or not self.checkpoints.exists():
            return None, 0
        try:
            payload = self.checkpoints.load()
        except CheckpointError:
            return None, 0
        if payload is None:
            return None, 0
        state = payload["queries"].get(name)
        if state is None:
            return None, 0
        return state, int(payload["consumed"])

    @staticmethod
    def _revive(runner: QueryRunner, state: Optional[Dict[str, Any]]) -> None:
        """Restore a runner in place, rebuilding dead shard pipelines first."""
        try:
            if state is None:
                runner.restore_pristine()
            else:
                runner.restore_state(state)
        except (ServiceError, OSError):
            if runner._shards is None:
                raise
            runner.reopen_shards()
            if state is None:
                runner.restore_pristine()
            else:
                runner.restore_state(state)

    async def _join_queues(self) -> None:
        await asyncio.gather(*(r.queue.join() for r in self._registrations.values()))

    # -- checkpointing ---------------------------------------------------------------

    async def checkpoint(self) -> int:
        """Barrier checkpoint: pause, drain, snapshot, write, resume."""
        if self.checkpoints is None:
            raise ServiceError("server was built without a checkpoint directory")
        async with self._checkpoint_lock:
            was_paused = self.paused
            self._resume_gate.clear()
            try:
                await self._join_queues()
                self.checkpoint_seq += 1
                states = {
                    name: registration.runner.checkpoint_state()
                    for name, registration in self._registrations.items()
                    if registration.status == RUNNING
                }
                self.checkpoints.write(self.checkpoint_seq, self.consumed, states)
                self._since_checkpoint = 0
                self._prune_replay()
            finally:
                if not was_paused and not self._stopping:
                    self._resume_gate.set()
            return self.checkpoint_seq

    def _prune_replay(self) -> None:
        """Drop replay-log entries every retained generation already covers."""
        if self._replay is None or self.checkpoints is None:
            return
        floor = self.checkpoints.consumed_floor()
        if floor is None:
            return
        while self._replay and self._replay[0][0] <= floor:
            self._replay.popleft()
        if floor > self._replay_floor:
            self._replay_floor = floor

    # -- shutdown --------------------------------------------------------------------

    def request_stop(self) -> None:
        """Signal-handler hook: ask the serve loop to shut down gracefully."""
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self, graceful: bool = True, final_checkpoint: bool = True) -> None:
        """Drain, checkpoint, flush and close everything.

        ``graceful=False`` (crash simulation for tests) tears the listener
        down without draining, flushing or closing sinks — exactly the state
        a restore must recover from.
        """
        self._stopping = True
        self._resume_gate.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if not graceful:
            for registration in self._registrations.values():
                if registration.task is not None:
                    registration.task.cancel()
            self._stopped.set()
            return
        await self._join_queues()
        if self.checkpoints is not None and final_checkpoint and not self.eos_seen:
            self.checkpoint_seq += 1
            states = {
                name: registration.runner.checkpoint_state()
                for name, registration in self._registrations.items()
                if registration.status == RUNNING
            }
            self.checkpoints.write(self.checkpoint_seq, self.consumed, states)
            self._prune_replay()
        for registration in self._registrations.values():
            registration.queue.put_nowait(_STOP)
        for registration in self._registrations.values():
            if registration.task is not None:
                await registration.task
        for registration in self._registrations.values():
            runner = registration.runner
            if not runner.finished:
                # mid-stream shutdown: no operator flush (their state lives in
                # the checkpoint) — just the final metrics snapshot
                runner.abort()
            runner.flush_sinks()
            runner.close_sinks()
            if registration.dlq is not None:
                registration.dlq.close()
        if self._ingest_dlq is not None:
            self._ingest_dlq.close()
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Start, then serve until :meth:`request_stop` / EOS stop fires."""
        await self.start()
        try:
            await self.wait_stopped()
        finally:
            if self._server is not None:
                await self.stop(graceful=True)
