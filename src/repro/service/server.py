"""The long-running stream server: asyncio ingestion, fan-out, checkpoints.

One asyncio TCP listener accepts any number of NDJSON feeders.  Every event
line is parsed into a :class:`~repro.streaming.record.Record` exactly once
and fanned out to the per-query ingest queues — N registered queries share
one ingestion path instead of re-parsing the feed N times.  Each query runs
in its own worker coroutine on a :class:`~repro.service.runner.QueryRunner`
(record or batch engine machinery underneath).

**Backpressure** closes the loop over the live metrics bus: the server
registers a ``service_queue_depth`` gauge on every runner's bus and
subscribes a controller to the snapshots; when a snapshot reports the depth
at or above ``high_watermark`` the socket readers pause (a cleared
``asyncio.Event`` gates every ``readline``), and the workers — which keep
draining and therefore keep ticking the bus — resume the readers once the
backlog falls to ``low_watermark``.  Load shedding and adaptive batch
sizing hook into the same snapshots per query (``shed_target_eps`` /
``adaptive_batch`` at registration).

**Checkpoints** are barrier-style: pause ingestion, drain every queue and
partial batch, snapshot all operator state plus each sink's position and
the global ``consumed`` offset, write atomically
(:class:`~repro.service.checkpoint.CheckpointManager`), resume.  A server
started with ``resume=True`` restores that state and discards the first
``consumed`` events of the (re-played) feed, so its sinks continue exactly
where the checkpoint left off — byte-identical to a run that never died.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.service.checkpoint import CheckpointManager
from repro.service.net import CONTROL_FIELD, EOS, parse_line
from repro.service.runner import QueryRunner
from repro.streaming.query import Query
from repro.streaming.record import Record

_STOP = object()  # queue sentinel: worker exits without flushing
_FLUSH = object()  # queue sentinel: end-of-stream, worker flushes the runner


class _Registration:
    def __init__(self, runner: QueryRunner) -> None:
        self.runner = runner
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.sizer = None
        self.error: Optional[BaseException] = None


class StreamServer:
    """N continuous queries over one TCP NDJSON feed, in one process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        high_watermark: int = 10_000,
        low_watermark: int = 1_000,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval_events: int = 0,
        checkpoint_keep: int = 3,
        resume: bool = False,
        stop_after_eos: bool = False,
    ) -> None:
        if low_watermark > high_watermark:
            raise ServiceError("low_watermark must not exceed high_watermark")
        self.host = host
        self.port = port
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.checkpoint_interval_events = int(checkpoint_interval_events)
        self.stop_after_eos = stop_after_eos
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, keep=checkpoint_keep)
            if checkpoint_dir
            else None
        )
        self.resume = resume
        self.consumed = 0  # events fanned out over the server's lifetime (incl. restored)
        self.eos_seen = False
        self.paused = False
        self.checkpoint_seq = 0
        self._skip = 0
        self._since_checkpoint = 0
        self._registrations: Dict[str, _Registration] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._resume_gate = asyncio.Event()
        self._resume_gate.set()
        self._stopped = asyncio.Event()
        self._checkpoint_lock = asyncio.Lock()
        self._stopping = False

    # -- registration ----------------------------------------------------------------

    def register(
        self,
        name: str,
        query: "Query",
        mode: str = "record",
        batch_size: int = 256,
        metric_bus=None,
        shed_target_eps: Optional[float] = None,
        adaptive_batch: bool = False,
        pool=None,
        partitions: int = 1,
        partition_key: str = "device_id",
    ) -> QueryRunner:
        """Add a continuous query.  Must be called before :meth:`start`.

        ``pool`` + ``partitions > 1`` shards a batch-mode query across the
        pool's resident worker processes (see :class:`QueryRunner`).
        """
        if self._server is not None:
            raise ServiceError("register queries before starting the server")
        if name in self._registrations:
            raise ServiceError(f"a query named {name!r} is already registered")
        runner = QueryRunner(
            name,
            query,
            mode=mode,
            batch_size=batch_size,
            metric_bus=metric_bus,
            shed_target_eps=shed_target_eps,
            pool=pool,
            partitions=partitions,
            partition_key=partition_key,
        )
        registration = _Registration(runner)
        bus = runner.metrics.bus
        if bus is not None:
            bus.set_gauge("service_queue_depth", lambda r=registration: r.queue.qsize())
            bus.subscribe(self._backpressure_subscriber(registration))
            if adaptive_batch and mode == "batch":
                from repro.streaming.adaptivity import AdaptiveBatchSizer

                registration.sizer = bus.subscribe(AdaptiveBatchSizer(runner))
        self._registrations[name] = registration
        return runner

    @property
    def runners(self) -> List[QueryRunner]:
        return [r.runner for r in self._registrations.values()]

    @property
    def errors(self) -> Dict[str, BaseException]:
        """Per-query failures (a raising operator kills only its query)."""
        return {
            name: registration.error
            for name, registration in self._registrations.items()
            if registration.error is not None
        }

    # -- backpressure ----------------------------------------------------------------

    def _backpressure_subscriber(self, registration: _Registration):
        def on_snapshot(snapshot) -> None:
            depth = snapshot.gauges.get("service_queue_depth")
            if depth is None:
                return
            if depth >= self.high_watermark:
                self._pause()
            elif self.paused and self._total_queued() <= self.low_watermark:
                self._resume()

        return on_snapshot

    def _total_queued(self) -> int:
        return sum(r.queue.qsize() for r in self._registrations.values())

    def _pause(self) -> None:
        if not self.paused:
            self.paused = True
            self._resume_gate.clear()

    def _resume(self) -> None:
        if self.paused and not self._stopping:
            self.paused = False
            self._resume_gate.set()

    def _after_drain(self) -> None:
        """Worker-side resume check: release readers once the backlog clears.

        Resume is drain-driven (not only snapshot-driven) so a paused server
        with too few remaining records to trigger another snapshot can never
        deadlock.
        """
        if self.paused and self._total_queued() <= self.low_watermark:
            self._resume()

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        """Restore from the checkpoint (when resuming), bind, spawn workers."""
        if not self._registrations:
            raise ServiceError("no queries registered")
        if self.resume and self.checkpoints is not None:
            payload = self.checkpoints.load()
            if payload is not None:
                self._apply_checkpoint(payload)
        for registration in self._registrations.values():
            registration.task = asyncio.create_task(self._worker(registration))
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def _apply_checkpoint(self, payload: Dict[str, Any]) -> None:
        queries = payload["queries"]
        unknown = set(queries) - set(self._registrations)
        if unknown:
            raise ServiceError(
                f"checkpoint carries queries {sorted(unknown)} that are not registered"
            )
        for name, state in queries.items():
            self._registrations[name].runner.restore_state(state)
        self.consumed = int(payload["consumed"])
        self._skip = self.consumed
        self.checkpoint_seq = int(payload["seq"])

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                await self._resume_gate.wait()
                line = await reader.readline()
                if not line:
                    break
                parsed = parse_line(line)
                if parsed is None:
                    continue
                if isinstance(parsed, dict):
                    if parsed.get(CONTROL_FIELD) == EOS:
                        await self._on_eos()
                    continue
                await self._ingest(parsed)
        finally:
            writer.close()

    async def _ingest(self, record: Record) -> None:
        if self.eos_seen or self._stopping:
            return
        if self._skip > 0:
            # resumed server: this prefix of the replayed feed is already in
            # the restored state and the rewound sinks
            self._skip -= 1
            return
        self.consumed += 1
        for registration in self._registrations.values():
            registration.queue.put_nowait(record)
        self._since_checkpoint += 1
        if (
            self.checkpoints is not None
            and self.checkpoint_interval_events > 0
            and self._since_checkpoint >= self.checkpoint_interval_events
        ):
            await self.checkpoint()
        else:
            # one cooperative yield per line keeps workers fed while a
            # fast feeder saturates the reader
            await asyncio.sleep(0)

    async def _on_eos(self) -> None:
        if self.eos_seen:
            return
        self.eos_seen = True
        for registration in self._registrations.values():
            registration.queue.put_nowait(_FLUSH)
        if self.stop_after_eos:
            await self._join_queues()
            self._stopped.set()

    async def _worker(self, registration: _Registration) -> None:
        """Drain one query's ingest queue into its runner.

        A raising operator poisons only its own query: the runner is aborted
        (final snapshot emitted) and its sinks closed, but the worker keeps
        consuming — and acknowledging — queue items so barrier drains and
        sibling queries are unaffected.
        """
        queue = registration.queue
        runner = registration.runner
        while True:
            item = await queue.get()
            try:
                if item is _STOP:
                    return
                if item is _FLUSH:
                    if registration.error is None:
                        runner.finish()
                        runner.flush_sinks()
                    continue
                if registration.error is None:
                    runner.process(item)
            except Exception as exc:
                registration.error = exc
                runner.abort()
                runner.close_sinks()
            finally:
                queue.task_done()
            self._after_drain()

    async def _join_queues(self) -> None:
        await asyncio.gather(*(r.queue.join() for r in self._registrations.values()))

    # -- checkpointing ---------------------------------------------------------------

    async def checkpoint(self) -> int:
        """Barrier checkpoint: pause, drain, snapshot, write, resume."""
        if self.checkpoints is None:
            raise ServiceError("server was built without a checkpoint directory")
        async with self._checkpoint_lock:
            was_paused = self.paused
            self._resume_gate.clear()
            try:
                await self._join_queues()
                self.checkpoint_seq += 1
                states = {
                    name: registration.runner.checkpoint_state()
                    for name, registration in self._registrations.items()
                }
                self.checkpoints.write(self.checkpoint_seq, self.consumed, states)
                self._since_checkpoint = 0
            finally:
                if not was_paused and not self._stopping:
                    self._resume_gate.set()
            return self.checkpoint_seq

    # -- shutdown --------------------------------------------------------------------

    def request_stop(self) -> None:
        """Signal-handler hook: ask the serve loop to shut down gracefully."""
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self, graceful: bool = True, final_checkpoint: bool = True) -> None:
        """Drain, checkpoint, flush and close everything.

        ``graceful=False`` (crash simulation for tests) tears the listener
        down without draining, flushing or closing sinks — exactly the state
        a restore must recover from.
        """
        self._stopping = True
        self._resume_gate.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if not graceful:
            for registration in self._registrations.values():
                if registration.task is not None:
                    registration.task.cancel()
            self._stopped.set()
            return
        await self._join_queues()
        if self.checkpoints is not None and final_checkpoint and not self.eos_seen:
            self.checkpoint_seq += 1
            states = {
                name: registration.runner.checkpoint_state()
                for name, registration in self._registrations.items()
            }
            self.checkpoints.write(self.checkpoint_seq, self.consumed, states)
        for registration in self._registrations.values():
            registration.queue.put_nowait(_STOP)
        for registration in self._registrations.values():
            if registration.task is not None:
                await registration.task
        for registration in self._registrations.values():
            runner = registration.runner
            if not runner.finished:
                # mid-stream shutdown: no operator flush (their state lives in
                # the checkpoint) — just the final metrics snapshot
                runner.abort()
            runner.flush_sinks()
            runner.close_sinks()
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Start, then serve until :meth:`request_stop` / EOS stop fires."""
        await self.start()
        try:
            await self.wait_stopped()
        finally:
            if self._server is not None:
                await self.stop(graceful=True)
