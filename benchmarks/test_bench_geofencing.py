"""Experiment T1 — geofencing queries (paper §3.1).

The paper reports, for Queries 1–4 together, "a throughput of 2.24 MB with
20K events per second (e/s)".  Each benchmark below runs one geofencing query
over the simulated SNCB stream and records the measured ingestion rate and
data volume in the benchmark's ``extra_info``; ``report.py`` prints the
paper-vs-measured table.
"""

import pytest

from benchmarks.conftest import run_query_and_annotate
from repro.queries import QUERY_CATALOG


@pytest.mark.parametrize("query_id", ["Q1", "Q2", "Q3", "Q4"])
def test_geofencing_query_throughput(benchmark, engine, bench_scenario, query_id):
    info = QUERY_CATALOG[query_id]
    query = info.build(bench_scenario)
    result = run_query_and_annotate(benchmark, engine, query, info)
    # The stream must be fully ingested and the query must do real work.
    assert result.metrics.events_in >= bench_scenario.num_events
    assert result.metrics.ingestion_rate_eps > 1_000


def test_q1_alert_suppression_is_selective(benchmark, engine, bench_scenario):
    """Q1's whole point is selectivity: only a tiny fraction of events survive."""
    info = QUERY_CATALOG["Q1"]
    result = run_query_and_annotate(benchmark, engine, info.build(bench_scenario), info)
    assert result.metrics.selectivity < 0.05


def test_q3_reports_only_violations(benchmark, engine, bench_scenario):
    info = QUERY_CATALOG["Q3"]
    result = run_query_and_annotate(benchmark, engine, info.build(bench_scenario), info)
    assert all(r["speed_kmh"] > r["speed_limit_kmh"] for r in result)
