"""Experiments A4–A5 (extensions) — future-work operators under load.

A4 — cost of the streaming top-k nearest-trains operator (paper §4 future
work) relative to the plain stream.

A5 — workload adaptivity: the same geofencing query with and without the
adaptive load shedder in front of it, measuring how much of the stream is
shed and how the alert output is preserved (alerts are priority records and
must never be dropped).
"""

import pytest

from repro.nebulameos.topk import TopKNearestOperator
from repro.queries import QUERY_CATALOG
from repro.streaming.adaptivity import AdaptiveLoadShedder
from repro.streaming.expressions import col
from repro.streaming.query import Query


def test_topk_nearest_operator_cost(benchmark, engine, bench_scenario):
    query = (
        Query.from_source(bench_scenario.source(), name="topk-nearest")
        .filter(col("lon").ne(None))
        .apply(lambda: TopKNearestOperator(k=3, staleness_s=120.0), name="topk")
    )
    holder = {}

    def run():
        holder["result"] = engine.execute(query)
        return holder["result"]

    benchmark(run)
    result = holder["result"]
    benchmark.extra_info["events_in"] = result.metrics.events_in
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    assert len(result) > 0


def test_passthrough_baseline_cost(benchmark, engine, bench_scenario):
    """Baseline for A4: the same stream without the top-k operator."""
    query = Query.from_source(bench_scenario.source(), name="passthrough").filter(col("lon").ne(None))
    holder = {}

    def run():
        holder["result"] = engine.execute(query)
        return holder["result"]

    benchmark(run)
    benchmark.extra_info["ingestion_rate_eps"] = round(
        holder["result"].metrics.ingestion_rate_eps, 1
    )


@pytest.mark.parametrize("keep_fraction", [0.25, 0.75])
def test_stream_with_load_shedding(benchmark, engine, bench_scenario, keep_fraction):
    """A5: the raw stream behind an adaptive load shedder that always lets alerts through.

    The shedding target is derived from the scenario's own event-time rate so
    the stream is genuinely overloaded: ``keep_fraction`` of the non-alert
    events survive, every alert survives.
    """
    stream_rate_eps = bench_scenario.config.num_trains / bench_scenario.config.interval_s
    target_eps = max(1.0, stream_rate_eps * keep_fraction)
    shedder_holder = {}

    def shedder_factory():
        shedder_holder["shedder"] = AdaptiveLoadShedder(
            target_eps=target_eps, priority=col("alert").ne("")
        )
        return shedder_holder["shedder"]

    shedded = Query.from_source(bench_scenario.source(), name=f"shedded_{keep_fraction}").apply(
        shedder_factory, name="load_shed"
    )
    holder = {}

    def run():
        holder["result"] = engine.execute(shedded)
        return holder["result"]

    benchmark(run)
    result = holder["result"]
    shedder = shedder_holder["shedder"]
    benchmark.extra_info["target_eps"] = target_eps
    benchmark.extra_info["shed_ratio"] = round(shedder.shed_ratio, 3)
    benchmark.extra_info["events_kept"] = len(result)
    # Alerts are priority records: every alert in the raw stream survives shedding.
    alerts_in = sum(1 for e in bench_scenario.events if e["alert"])
    alerts_out = sum(1 for r in result if r["alert"])
    assert alerts_out == alerts_in
    # The stream really was overloaded relative to the target, so events were shed.
    assert len(result) < bench_scenario.num_events
    assert shedder.shed_ratio > (1.0 - keep_fraction) / 2.0
