"""Record-at-a-time vs vectorized micro-batch execution throughput.

The batch runtime (:mod:`repro.runtime`) exists to amortize Python
interpreter overhead over whole columns; these benchmarks quantify the win on
the catalog queries the paper reports ingestion rates for:

* **Q1** (geofencing: filters + plugin geofence operator + project) — the
  stateless stages vectorize, so this is the headline speedup;
* **Q6** (GCEP: windowed aggregation over the full stream) — exercises the
  batch-native window operator with per-key accumulators.

Byte accounting is disabled in both modes (as in the other benchmarks) so the
measurement captures engine overhead, not ``estimate_record_bytes``.
The agreement test doubles as the acceptance gate: at ``batch_size=256`` the
batch engine must ingest Q1 at least 2x faster than the record engine while
producing identical output.
"""

import os

from repro.queries import QUERY_CATALOG
from repro.runtime import BatchExecutionEngine
from repro.streaming.engine import StreamExecutionEngine

BATCH_SIZE = 256

# Shared CI runners are timing-noisy; keep the full 2x bar for local /
# dedicated-hardware runs and only sanity-check the direction on CI.
SPEEDUP_FLOOR = 1.2 if os.environ.get("CI") else 2.0


def _best_rate(engine, info, scenario, repeat=3):
    """Best observed ingestion rate (events/s) over ``repeat`` runs."""
    best_rate, result = 0.0, None
    for _ in range(repeat):
        run = engine.execute(info.build(scenario))
        if run.metrics.ingestion_rate_eps > best_rate:
            best_rate = run.metrics.ingestion_rate_eps
        result = run
    return best_rate, result


def test_bench_q1_record_mode(benchmark, bench_scenario):
    engine = StreamExecutionEngine(measure_bytes=False)
    info = QUERY_CATALOG["Q1"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = "record"


def test_bench_q1_batch_mode(benchmark, bench_scenario):
    engine = BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False)
    info = QUERY_CATALOG["Q1"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = f"batch[{BATCH_SIZE}]"


def test_bench_q6_record_mode(benchmark, bench_scenario):
    engine = StreamExecutionEngine(measure_bytes=False)
    info = QUERY_CATALOG["Q6"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = "record"


def test_bench_q6_batch_mode(benchmark, bench_scenario):
    engine = BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False)
    info = QUERY_CATALOG["Q6"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = f"batch[{BATCH_SIZE}]"


def test_batch_mode_speedup_on_q1(bench_scenario):
    """Acceptance gate: >= 2x ingestion-rate speedup on Q1 at batch_size=256."""
    info = QUERY_CATALOG["Q1"]
    record_rate, record_result = _best_rate(
        StreamExecutionEngine(measure_bytes=False), info, bench_scenario
    )
    batch_rate, batch_result = _best_rate(
        BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False), info, bench_scenario
    )
    assert [r.as_dict() for r in batch_result.records] == [
        r.as_dict() for r in record_result.records
    ]
    speedup = batch_rate / record_rate
    print(
        f"\nQ1 ingestion: record {record_rate:,.0f} e/s, "
        f"batch[{BATCH_SIZE}] {batch_rate:,.0f} e/s ({speedup:.2f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR


def test_batch_sizes_sweep_q1(bench_scenario):
    """Throughput grows with the batch size, then saturates — record the curve."""
    info = QUERY_CATALOG["Q1"]
    rates = {}
    for batch_size in (16, 64, 256, 1024):
        engine = BatchExecutionEngine(batch_size=batch_size, measure_bytes=False)
        rates[batch_size], _ = _best_rate(engine, info, bench_scenario, repeat=2)
    print("\nQ1 batch-size sweep:", {k: f"{v:,.0f} e/s" for k, v in rates.items()})
    # even small batches must beat nothing; the sweep is informational
    assert all(rate > 0 for rate in rates.values())
