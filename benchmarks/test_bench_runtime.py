"""Record-at-a-time vs vectorized micro-batch execution throughput.

The batch runtime (:mod:`repro.runtime`) exists to amortize Python
interpreter overhead over whole columns; these benchmarks quantify the win on
the catalog queries the paper reports ingestion rates for:

* **Q1** (geofencing: filters + batch-native geofence kernel + project) —
  the headline fully-columnar pipeline;
* **Q3** (geofencing: batch-native spatial-join kernel + filters/map) —
  exercises the column-wise grid-index probes;
* **Q4** (geofencing: map-derived join key + batch-native hash join) —
  exercises the windowed join kernel behind a per-record UDF map;
* **Q6** (GCEP: windowed aggregation over the full stream) — exercises the
  batch-native window operator with per-key accumulators;
* **Q8** (GCEP: per-cell UDF map + batch-native CEP) — exercises the NFA
  column stepping.

Byte accounting is disabled in both modes (as in the other benchmarks) so the
measurement captures engine overhead, not ``estimate_record_bytes``.
The agreement tests double as acceptance gates: at ``batch_size=256`` the
batch engine must ingest Q1/Q4 at least 2x and Q3/Q8 at least 2.5x faster
than the record engine while producing identical output.  Gate results are
written to ``BENCH_runtime.json`` at the repository root so the performance
trajectory is tracked across PRs.
"""

import os

from repro.cli import merge_bench_json
from repro.queries import QUERY_CATALOG
from repro.runtime import BatchExecutionEngine
from repro.streaming.engine import StreamExecutionEngine

BATCH_SIZE = 256

# Shared CI runners are timing-noisy; keep the full bars for local /
# dedicated-hardware runs and only sanity-check the direction on CI.
SPEEDUP_FLOOR = 1.2 if os.environ.get("CI") else 2.0
SPEEDUP_FLOOR_STATEFUL = 1.2 if os.environ.get("CI") else 2.5

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_runtime.json")


def _best_rate(engine, info, scenario, repeat=3):
    """Best observed ingestion rate (events/s) over ``repeat`` runs."""
    best_rate, result = 0.0, None
    for _ in range(repeat):
        run = engine.execute(info.build(scenario))
        if run.metrics.ingestion_rate_eps > best_rate:
            best_rate = run.metrics.ingestion_rate_eps
        result = run
    return best_rate, result


def _speedup_gate(query_id, bench_scenario, floor, repeat=3):
    """Measure record vs batch on one query, assert parity + speedup floor."""
    info = QUERY_CATALOG[query_id]
    record_rate, record_result = _best_rate(
        StreamExecutionEngine(measure_bytes=False), info, bench_scenario, repeat=repeat
    )
    batch_rate, batch_result = _best_rate(
        BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False),
        info,
        bench_scenario,
        repeat=repeat,
    )
    assert [r.as_dict() for r in batch_result.records] == [
        r.as_dict() for r in record_result.records
    ]
    merge_bench_json(BENCH_JSON, query_id, record_rate, batch_rate, batch_size=BATCH_SIZE)
    speedup = batch_rate / record_rate
    print(
        f"\n{query_id} ingestion: record {record_rate:,.0f} e/s, "
        f"batch[{BATCH_SIZE}] {batch_rate:,.0f} e/s ({speedup:.2f}x)"
    )
    assert speedup >= floor


def test_bench_q1_record_mode(benchmark, bench_scenario):
    engine = StreamExecutionEngine(measure_bytes=False)
    info = QUERY_CATALOG["Q1"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = "record"


def test_bench_q1_batch_mode(benchmark, bench_scenario):
    engine = BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False)
    info = QUERY_CATALOG["Q1"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = f"batch[{BATCH_SIZE}]"


def test_bench_q6_record_mode(benchmark, bench_scenario):
    engine = StreamExecutionEngine(measure_bytes=False)
    info = QUERY_CATALOG["Q6"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = "record"


def test_bench_q6_batch_mode(benchmark, bench_scenario):
    engine = BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False)
    info = QUERY_CATALOG["Q6"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = f"batch[{BATCH_SIZE}]"


def test_bench_q3_record_mode(benchmark, bench_scenario):
    engine = StreamExecutionEngine(measure_bytes=False)
    info = QUERY_CATALOG["Q3"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = "record"


def test_bench_q3_batch_mode(benchmark, bench_scenario):
    engine = BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False)
    info = QUERY_CATALOG["Q3"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = f"batch[{BATCH_SIZE}]"


def test_bench_q8_record_mode(benchmark, bench_scenario):
    engine = StreamExecutionEngine(measure_bytes=False)
    info = QUERY_CATALOG["Q8"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = "record"


def test_bench_q8_batch_mode(benchmark, bench_scenario):
    engine = BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False)
    info = QUERY_CATALOG["Q8"]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = f"batch[{BATCH_SIZE}]"


def test_batch_mode_speedup_on_q1(bench_scenario):
    """Acceptance gate: >= 2x ingestion-rate speedup on Q1 at batch_size=256."""
    _speedup_gate("Q1", bench_scenario, SPEEDUP_FLOOR)


def test_batch_mode_speedup_on_q3(bench_scenario):
    """Acceptance gate: the batch-native spatial-join kernel lifts Q3 >= 2.5x."""
    _speedup_gate("Q3", bench_scenario, SPEEDUP_FLOOR_STATEFUL)


def test_batch_mode_speedup_on_q4(bench_scenario):
    """Acceptance gate: the join-heavy Q4 pipeline lifts >= 2x at batch_size=256.

    Q4 chains filters, a per-record UDF map (the weather grid cell), the
    batch-native hash join against the weather stream, and a final
    filter/map/project — the catalog's only binary plan, now also the only
    one that partitions on a map-derived key.  Its margin over the floor is
    the thinnest of the gates (~2.2–2.4x), so it takes best-of-5 runs.
    """
    _speedup_gate("Q4", bench_scenario, SPEEDUP_FLOOR, repeat=5)


def test_batch_mode_speedup_on_q8(bench_scenario):
    """Acceptance gate: batch-native CEP lifts Q8 >= 2.5x."""
    _speedup_gate("Q8", bench_scenario, SPEEDUP_FLOOR_STATEFUL)


def test_batch_sizes_sweep_q1(bench_scenario):
    """Throughput grows with the batch size, then saturates — record the curve."""
    info = QUERY_CATALOG["Q1"]
    rates = {}
    for batch_size in (16, 64, 256, 1024):
        engine = BatchExecutionEngine(batch_size=batch_size, measure_bytes=False)
        rates[batch_size], _ = _best_rate(engine, info, bench_scenario, repeat=2)
    print("\nQ1 batch-size sweep:", {k: f"{v:,.0f} e/s" for k, v in rates.items()})
    # even small batches must beat nothing; the sweep is informational
    assert all(rate > 0 for rate in rates.values())
