"""Record-at-a-time vs vectorized micro-batch execution throughput.

The batch runtime (:mod:`repro.runtime`) exists to amortize Python
interpreter overhead over whole columns; these benchmarks quantify the win on
the full catalog and gate the performance trajectory across PRs.

Two gate families run, one per column backend
(:mod:`repro.runtime.columns`):

* **numpy** (the headline numbers, written to ``BENCH_runtime.json`` with
  the backend recorded): typed-array columns, ufunc filter/map kernels,
  grouped window reductions, columnar emission and the cached per-source
  column store.  Q1 (fully columnar geofencing) must reach **8x**, Q8
  (per-cell CEP) **5x**, and Q5 (threshold-window episodes over the
  vectorized nearest-workshop scan) **2.5x** over the record engine at
  ``batch_size=256``; the other five queries hold query-specific floors set
  below their measured headroom.
* **python** (numpy uninstalled or ``REPRO_BATCH_BACKEND=python``): every
  kernel takes its pure-Python list path and the pre-numpy floors (Q1 >= 2x,
  Q3/Q8 >= 2.5x, Q4 >= 2x) must keep holding, so the fallback never rots.

On 4+-core machines a third family gates multi-core scaling: ``process@4``
(forked workers over shared-memory columns) must reach 2.5x the
single-partition batch rate on Q1/Q8 and beat ``thread@4`` on Q1, with the
measured curve persisted to the ``scaling`` section of ``BENCH_runtime.json``.

Byte accounting is disabled in both modes (as in the other benchmarks) so the
measurement captures engine overhead, not ``estimate_record_bytes``.  Every
gate also asserts record-for-record output parity, so a "fast but wrong"
regression cannot pass.
"""

import os

import pytest

from repro.cli import merge_bench_json
from repro.queries import QUERY_CATALOG
from repro.runtime import BatchExecutionEngine
from repro.runtime import columns
from repro.streaming.engine import StreamExecutionEngine

BATCH_SIZE = 256

#: Local speedup floors per query for the numpy backend.  Q1/Q8 are the
#: acceptance bars; the rest sit ~20-30% under their measured rates so a real
#: regression trips them while timing noise does not.
NUMPY_FLOORS = {
    "Q1": 8.0,
    "Q2": 2.2,
    "Q3": 2.5,
    "Q4": 2.0,
    "Q5": 2.5,
    "Q6": 3.0,
    "Q7": 2.5,
    "Q8": 5.0,
}

#: The pure-Python backend keeps the pre-numpy gates.
PYTHON_FLOORS = {"Q1": 2.0, "Q3": 2.5, "Q4": 2.0, "Q8": 2.5}

# Shared CI runners are timing-noisy; keep the full bars for local /
# dedicated-hardware runs and only sanity-check the direction on CI.
CI = bool(os.environ.get("CI"))

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_runtime.json")


def _ci_floor(floor: float) -> float:
    return min(1.2, floor) if CI else floor


def _best_rate(engine, info, scenario, repeat=3):
    """Best observed ingestion rate (events/s) over ``repeat`` runs."""
    best_rate, result = 0.0, None
    for _ in range(repeat):
        run = engine.execute(info.build(scenario))
        if run.metrics.ingestion_rate_eps > best_rate:
            best_rate = run.metrics.ingestion_rate_eps
        result = run
    return best_rate, result


def _speedup_gate(query_id, bench_scenario, floor, repeat=3, write_json=True):
    """Measure record vs batch on one query, assert parity + speedup floor."""
    info = QUERY_CATALOG[query_id]
    record_rate, record_result = _best_rate(
        StreamExecutionEngine(measure_bytes=False), info, bench_scenario, repeat=repeat
    )
    batch_rate, batch_result = _best_rate(
        BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False),
        info,
        bench_scenario,
        repeat=repeat,
    )
    assert [r.as_dict() for r in batch_result.records] == [
        r.as_dict() for r in record_result.records
    ]
    if write_json:
        merge_bench_json(
            BENCH_JSON,
            query_id,
            record_rate,
            batch_rate,
            batch_size=BATCH_SIZE,
            backend=columns.active_backend(),
        )
    speedup = batch_rate / record_rate
    print(
        f"\n{query_id}[{columns.active_backend()}] ingestion: record {record_rate:,.0f} e/s, "
        f"batch[{BATCH_SIZE}] {batch_rate:,.0f} e/s ({speedup:.2f}x, floor {floor:.1f}x)"
    )
    assert speedup >= floor


@pytest.fixture()
def numpy_backend():
    if not columns.numpy_available():
        pytest.skip("numpy not installed")
    previous = columns.active_backend()
    columns.set_backend("numpy")
    yield
    columns.set_backend(previous)


@pytest.fixture()
def python_backend():
    previous = columns.active_backend()
    columns.set_backend("python")
    yield
    columns.set_backend(previous)


# -- pytest-benchmark timings (informational) ---------------------------------------


def _bench_mode(benchmark, bench_scenario, query_id, engine, label):
    info = QUERY_CATALOG[query_id]
    result = benchmark(lambda: engine.execute(info.build(bench_scenario)))
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["execution_mode"] = label
    benchmark.extra_info["column_backend"] = columns.active_backend()


@pytest.mark.parametrize("query_id", ["Q1", "Q3", "Q6", "Q8"])
def test_bench_record_mode(benchmark, bench_scenario, query_id):
    _bench_mode(
        benchmark, bench_scenario, query_id, StreamExecutionEngine(measure_bytes=False), "record"
    )


@pytest.mark.parametrize("query_id", ["Q1", "Q3", "Q6", "Q8"])
def test_bench_batch_mode(benchmark, bench_scenario, query_id):
    _bench_mode(
        benchmark,
        bench_scenario,
        query_id,
        BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False),
        f"batch[{BATCH_SIZE}]",
    )


# -- acceptance gates: numpy backend --------------------------------------------------


@pytest.mark.parametrize("query_id", sorted(NUMPY_FLOORS))
def test_numpy_backend_speedup_gates(query_id, bench_scenario, numpy_backend):
    """Typed-column acceptance gates over the whole catalog.

    Q1 >= 8x and Q8 >= 5x are the headline bars (Q4, the catalog's thinnest
    margin, takes best-of-5); results land in ``BENCH_runtime.json`` with the
    active backend recorded so the perf trajectory stays comparable across
    PRs.
    """
    repeat = 5 if query_id in ("Q4", "Q8") else 3
    _speedup_gate(
        query_id, bench_scenario, _ci_floor(NUMPY_FLOORS[query_id]), repeat=repeat
    )


# -- acceptance gates: pure-Python backend --------------------------------------------


@pytest.mark.parametrize("query_id", sorted(PYTHON_FLOORS))
def test_python_backend_keeps_existing_gates(query_id, bench_scenario, python_backend):
    """The list-kernel fallback must not rot behind the numpy backend.

    These are the pre-typed-column floors; results are not merged into the
    headline JSON (the numpy rows are the tracked trajectory) unless numpy is
    absent altogether, in which case these are the only rows.
    """
    _speedup_gate(
        query_id,
        bench_scenario,
        _ci_floor(PYTHON_FLOORS[query_id]),
        repeat=5 if query_id == "Q4" else 3,
        write_json=not columns.numpy_available(),
    )


def test_bus_enabled_keeps_q1_floor(bench_scenario):
    """The live metrics bus at default intervals must not eat the batch win.

    Same Q1 gate as the backend suites, but with a :class:`MetricBus`
    (default ``interval_events``/``interval_s``) and a subscriber attached to
    the batch engine — the instrumented twin loop plus per-batch latency
    observations have to stay in the floor's noise budget.  Not merged into
    ``BENCH_runtime.json``: the uninstrumented rows are the tracked
    trajectory.
    """
    from repro.streaming.metricbus import MetricBus, SnapshotLog

    info = QUERY_CATALOG["Q1"]
    record_rate, record_result = _best_rate(
        StreamExecutionEngine(measure_bytes=False), info, bench_scenario
    )
    bus = MetricBus()
    log = bus.subscribe(SnapshotLog())
    batch_rate, batch_result = _best_rate(
        BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False, metric_bus=bus),
        info,
        bench_scenario,
    )
    assert [r.as_dict() for r in batch_result.records] == [
        r.as_dict() for r in record_result.records
    ]
    assert log.snapshots  # the bus really was live
    floors = NUMPY_FLOORS if columns.active_backend() == "numpy" else PYTHON_FLOORS
    speedup = batch_rate / record_rate
    print(
        f"\nQ1[{columns.active_backend()}] with live bus: record {record_rate:,.0f} e/s, "
        f"batch[{BATCH_SIZE}] {batch_rate:,.0f} e/s ({speedup:.2f}x, "
        f"floor {floors['Q1']:.1f}x, {len(log.snapshots)} snapshots)"
    )
    assert speedup >= _ci_floor(floors["Q1"])


@pytest.mark.parametrize("query_id", ["Q1", "Q8"])
def test_process_scaling_gates(query_id, bench_scenario, numpy_backend):
    """Multi-core acceptance: forked workers must beat the GIL on real cores.

    On a 4+-core machine with ``fork`` available, ``process@4`` must reach
    2.5x the single-partition batch rate on Q1/Q8, and on Q1 it must beat
    ``thread@4`` outright (thread partitions time-slice one GIL, so they
    cannot scale CPU-bound columnar work; forked processes can).  The
    measured curve lands in the ``scaling`` section of
    ``BENCH_runtime.json``.  Skipped on small runners: with fewer than 4
    cores the workers just contend and the comparison measures fork
    overhead, not scaling.
    """
    from repro.cli import merge_bench_scaling
    from repro.runtime.parallel import process_pool_available

    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 cores to measure scaling (have {cores})")
    if not process_pool_available():
        pytest.skip("fork start method unavailable")

    info = QUERY_CATALOG[query_id]
    rates = {}
    base_rate, base_result = _best_rate(
        BatchExecutionEngine(batch_size=BATCH_SIZE, measure_bytes=False),
        info,
        bench_scenario,
    )
    rates["batch@1"] = base_rate
    for mode in ("thread", "process"):
        engine = BatchExecutionEngine(
            batch_size=BATCH_SIZE,
            measure_bytes=False,
            num_partitions=4,
            parallelism=mode,
        )
        rates[f"{mode}@4"], result = _best_rate(engine, info, bench_scenario)
        assert result.partitions == 4
        # partitioned output is the same multiset; exact order is not gated here
        assert sorted(
            (sorted(r.as_dict().items(), key=repr) for r in result.records), key=repr
        ) == sorted(
            (sorted(r.as_dict().items(), key=repr) for r in base_result.records), key=repr
        )
    merge_bench_scaling(
        BENCH_JSON,
        query_id,
        rates={key: round(value, 1) for key, value in rates.items()},
        backend=columns.active_backend(),
        batch_size=BATCH_SIZE,
        cores=cores,
    )
    print(
        f"\n{query_id} scaling over {cores} cores: "
        + ", ".join(f"{key} {value:,.0f} e/s" for key, value in rates.items())
        + f" (process@4 = {rates['process@4'] / base_rate:.2f}x base)"
    )
    assert rates["process@4"] >= _ci_floor(2.5) * base_rate
    if query_id == "Q1":
        # the headline claim: real cores beat GIL time-slicing
        floor = 0.9 if CI else 1.0
        assert rates["process@4"] >= floor * rates["thread@4"]


def test_pool_reuse_gate_q1(bench_scenario, numpy_backend):
    """Persistent-pool acceptance: a warm Q1 re-execution must reach at
    least 2x the cold (first-on-pool) rate at the same partition count —
    the fork, shared-memory export and worker compile really amortize.
    The cold/warm pair lands in the ``pool_reuse`` entry of the ``scaling``
    section of ``BENCH_runtime.json``.
    """
    import json as json_module

    from repro.runtime.parallel import process_pool_available
    from repro.runtime.pool import WorkerPool

    if not process_pool_available():
        pytest.skip("fork start method unavailable")

    info = QUERY_CATALOG["Q1"]
    partitions = 2
    pool = WorkerPool(partitions)
    try:
        engine = BatchExecutionEngine(
            batch_size=BATCH_SIZE,
            measure_bytes=False,
            num_partitions=partitions,
            parallelism="process",
            worker_pool=pool,
        )
        cold_run = engine.execute(info.build(bench_scenario))
        cold = cold_run.metrics.ingestion_rate_eps
        warm, warm_result = _best_rate(engine, info, bench_scenario, repeat=3)
        assert pool.stats["warm_executions"] >= 3
        # parity first: warm reuse must not change the output
        assert sorted(
            (sorted(r.as_dict().items(), key=repr) for r in warm_result.records), key=repr
        ) == sorted(
            (sorted(r.as_dict().items(), key=repr) for r in cold_run.records), key=repr
        )
        pool_reuse = {
            "partitions": partitions,
            "cold_eps": round(cold, 1),
            "warm_eps": round(warm, 1),
            "ratio": round(warm / cold, 3) if cold else None,
            "warm_executions": pool.stats["warm_executions"],
            "compiled_cache_hits": pool.stats["compiled_cache_hits"],
        }
    finally:
        pool.close()
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json_module.load(handle)
    data.setdefault("scaling", {}).setdefault("Q1", {})["pool_reuse"] = pool_reuse
    with open(BENCH_JSON, "w") as handle:
        json_module.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nQ1 pool reuse: cold {cold:,.0f} e/s, warm {warm:,.0f} e/s "
        f"({warm / cold:.2f}x)"
    )
    assert warm >= _ci_floor(2.0) * cold


def test_bench_json_service_section_schema():
    """The sustained-load service snapshot (``bench --serve --json``) must
    stay parseable: sustained eps present and positive for every entry."""
    import json as json_module

    if not os.path.exists(BENCH_JSON):
        pytest.skip("BENCH_runtime.json not generated yet")
    with open(BENCH_JSON) as handle:
        data = json_module.load(handle)
    service = data.get("service")
    if not service:
        pytest.skip("no service section recorded (regenerate with bench --serve --json)")
    for query_id, entry in service.items():
        assert entry["sustained_eps"] > 0, query_id
        assert entry["feeders"] >= 1, query_id
        assert entry["events_in"] > 0, query_id


def test_batch_sizes_sweep_q1(bench_scenario):
    """Throughput grows with the batch size, then saturates — record the curve."""
    info = QUERY_CATALOG["Q1"]
    rates = {}
    for batch_size in (16, 64, 256, 1024):
        engine = BatchExecutionEngine(batch_size=batch_size, measure_bytes=False)
        rates[batch_size], _ = _best_rate(engine, info, bench_scenario, repeat=2)
    print("\nQ1 batch-size sweep:", {k: f"{v:,.0f} e/s" for k, v in rates.items()})
    # even small batches must beat nothing; the sweep is informational
    assert all(rate > 0 for rate in rates.values())
