#!/usr/bin/env python
"""Paper-vs-measured report for the quantitative evaluation (T1–T5).

Runs every catalog query against the benchmark scenario and prints the same
quantities the paper reports per query — data volume (MB) and ingestion rate
(events/s) — side by side with the paper's numbers, plus a check of the
*shape*: the relative ordering of the per-query event rates reported in the
paper (Q6 highest, Q5 lowest).

Usage::

    python benchmarks/report.py [--duration 3600] [--interval 2] [--json results.json]
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List

from repro.queries import QUERY_CATALOG
from repro.sncb.scenario import Scenario, ScenarioConfig
from repro.streaming.engine import StreamExecutionEngine


def run_report(duration: float = 3600.0, interval: float = 2.0, seed: int = 42) -> List[Dict]:
    """Execute every query and return one result row per query."""
    scenario = Scenario(ScenarioConfig(num_trains=6, duration_s=duration, interval_s=interval, seed=seed))
    engine = StreamExecutionEngine()
    rows: List[Dict] = []
    for info in QUERY_CATALOG.values():
        result = engine.execute(info.build(scenario))
        metrics = result.metrics
        rows.append(
            {
                "query": info.query_id,
                "title": info.title,
                "category": info.category,
                "alerts": len(result),
                "events_in": metrics.events_in,
                "megabytes_in": round(metrics.megabytes_in, 3),
                "measured_eps": round(metrics.ingestion_rate_eps, 1),
                "measured_mb_per_s": round(metrics.throughput_mb_per_s, 3),
                "paper_eps": info.paper_events_per_s,
                "paper_mb": info.paper_throughput_mb,
            }
        )
    return rows


def shape_check(rows: List[Dict]) -> List[str]:
    """Compare the *shape* of the measured numbers with the paper's.

    The paper's per-query event rates order as Q6 (32K) > Q1–Q4 and Q8 (20K)
    > Q7 (10K) > Q5 (8K).  Our absolute numbers differ (pure-Python engine),
    but the relative byte-per-event profile should: Q6's passenger stream is
    the densest per event and Q5/Q7 the lightest output.  We check the
    orderings that are meaningful in our reproduction and report each as a
    pass/fail line.
    """
    by_id = {row["query"]: row for row in rows}
    checks: List[str] = []

    def check(label: str, condition: bool) -> None:
        checks.append(f"[{'PASS' if condition else 'FAIL'}] {label}")

    # Every query ingests the full stream.
    check(
        "all queries ingest the full stream (same events_in)",
        len({row["events_in"] for row in rows if row["query"] != "Q4"}) == 1,
    )
    # Selective alerting queries emit far fewer events than they ingest.
    for query_id in ("Q1", "Q3", "Q5", "Q7", "Q8"):
        row = by_id[query_id]
        check(f"{query_id} is selective (alerts << events)", row["alerts"] < row["events_in"] * 0.2)
    # Paper ordering of reported event rates: Q6 > Q1..Q4, Q8 > Q7 > Q5.
    check(
        "paper rates ordering recorded (Q6 > Q8 > Q7 > Q5)",
        by_id["Q6"]["paper_eps"] > by_id["Q8"]["paper_eps"] > by_id["Q7"]["paper_eps"] > by_id["Q5"]["paper_eps"],
    )
    # Measured: the cheap window query (Q6) must be faster per event than the
    # expensive join query (Q4) and at least as fast as the CEP-heavy Q8.
    check(
        "measured: Q6 (simple window) faster than Q4 (weather join)",
        by_id["Q6"]["measured_eps"] > by_id["Q4"]["measured_eps"],
    )
    check(
        "measured: Q6 (simple window) at least as fast as Q5 (threshold + nearest workshop)",
        by_id["Q6"]["measured_eps"] >= by_id["Q5"]["measured_eps"],
    )
    return checks


def print_report(rows: List[Dict]) -> None:
    header = (
        f"{'query':6} {'title':34} {'alerts':>7} {'MB in':>7} "
        f"{'measured e/s':>13} {'paper e/s':>10} {'measured MB/s':>14} {'paper MB':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['query']:6} {row['title'][:34]:34} {row['alerts']:7d} {row['megabytes_in']:7.2f} "
            f"{row['measured_eps']:13,.0f} {row['paper_eps']:10,.0f} "
            f"{row['measured_mb_per_s']:14.2f} {row['paper_mb']:9.2f}"
        )
    print()
    print("Shape checks (relative behaviour, see EXPERIMENTS.md):")
    for line in shape_check(rows):
        print(" ", line)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=3600.0, help="simulated seconds of operation")
    parser.add_argument("--interval", type=float, default=2.0, help="sensor sampling interval (s)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", type=str, default=None, help="also write the rows to this JSON file")
    args = parser.parse_args()

    rows = run_report(args.duration, args.interval, args.seed)
    print_report(rows)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"rows": rows, "checks": shape_check(rows)}, handle, indent=2)
        print(f"\nwrote {args.json}")


if __name__ == "__main__":
    main()
