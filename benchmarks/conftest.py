"""Shared fixtures for the benchmark harness.

The benchmark scenario mirrors the demonstration setup: six trains, one hour
of operation sampled every two seconds (~10k events), plus the weather
stream.  It is built once per session so the benchmarks measure query
execution, not data generation.
"""

from __future__ import annotations

import pytest

from repro.sncb.scenario import Scenario, ScenarioConfig
from repro.streaming.engine import StreamExecutionEngine


@pytest.fixture(scope="session")
def bench_scenario() -> Scenario:
    return Scenario(ScenarioConfig(num_trains=6, duration_s=3600.0, interval_s=2.0, seed=42))


@pytest.fixture(scope="session")
def engine() -> StreamExecutionEngine:
    return StreamExecutionEngine()


def run_query_and_annotate(benchmark, engine, query, paper_info=None):
    """Run a query under pytest-benchmark and attach throughput numbers.

    The measured ingestion rate (events/s) and data volume (MB) are stored in
    ``benchmark.extra_info`` so they appear in the benchmark report next to
    the paper's figures.
    """
    result_holder = {}

    def run():
        result_holder["result"] = engine.execute(query)
        return result_holder["result"]

    benchmark(run)
    result = result_holder["result"]
    metrics = result.metrics
    benchmark.extra_info["events_in"] = metrics.events_in
    benchmark.extra_info["events_out"] = metrics.events_out
    benchmark.extra_info["megabytes_in"] = round(metrics.megabytes_in, 3)
    benchmark.extra_info["ingestion_rate_eps"] = round(metrics.ingestion_rate_eps, 1)
    benchmark.extra_info["throughput_mb_per_s"] = round(metrics.throughput_mb_per_s, 3)
    if paper_info is not None:
        benchmark.extra_info["paper_events_per_s"] = paper_info.paper_events_per_s
        benchmark.extra_info["paper_throughput_mb"] = paper_info.paper_throughput_mb
    return result
