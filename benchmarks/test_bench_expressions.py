"""Experiment A3 (ablation) — MEOS expression pushdown vs. naive per-event predicate.

The NebulaMEOS expressions prune work with bounding-box indexes (grid index
over the static zones) before running exact containment tests.  The naive
baseline evaluates the exact polygon test against *every* zone for *every*
event — what an application would do without the MEOS integration.  The
benchmark compares both on the geofencing workload of Q1.
"""

import pytest

from repro.nebulameos.expressions import ZoneLookupExpression
from repro.sncb.zones import ZoneType
from repro.spatial.geometry import Point
from repro.streaming.expressions import col, udf
from repro.streaming.query import Query


def _zones(scenario):
    return scenario.zones.by_type(ZoneType.MAINTENANCE) + scenario.zones.by_type(
        ZoneType.SPEED_RESTRICTION
    ) + scenario.zones.by_type(ZoneType.NOISE_SENSITIVE)


def test_indexed_zone_lookup(benchmark, engine, bench_scenario):
    """Grid-index pruned lookup (what the NebulaMEOS ZoneLookup expression does)."""
    from repro.spatial.index import GridIndex

    index = GridIndex(0.05)
    for zone in _zones(bench_scenario):
        index.insert(zone.zone_id, zone.geometry)
    lookup = ZoneLookupExpression(index)
    query = (
        Query.from_source(bench_scenario.source(), name="indexed-lookup")
        .filter(col("lon").ne(None))
        .map(zones=lookup)
        .filter(udf(lambda r: bool(r["zones"]), name="in_any_zone"))
    )
    holder = {}

    def run():
        holder["result"] = engine.execute(query)
        return holder["result"]

    benchmark(run)
    result = holder["result"]
    benchmark.extra_info["matched_events"] = len(result)
    benchmark.extra_info["zones"] = len(index)
    assert len(result) > 0


def test_naive_full_scan(benchmark, engine, bench_scenario):
    """Baseline: exact containment against every zone for every event."""
    zones = _zones(bench_scenario)

    def in_any_zone(record):
        lon, lat = record.get("lon"), record.get("lat")
        if lon is None or lat is None:
            return False
        point = Point(float(lon), float(lat))
        return any(zone.geometry.contains_point(point) for zone in zones)

    query = (
        Query.from_source(bench_scenario.source(), name="naive-scan")
        .filter(udf(in_any_zone, name="in_any_zone"))
    )
    holder = {}

    def run():
        holder["result"] = engine.execute(query)
        return holder["result"]

    benchmark(run)
    result = holder["result"]
    benchmark.extra_info["matched_events"] = len(result)
    benchmark.extra_info["zones"] = len(zones)
    assert len(result) > 0


def test_indexed_and_naive_agree(engine, bench_scenario):
    """The pruned lookup must find exactly the same events as the naive scan."""
    from repro.spatial.index import GridIndex

    zones = _zones(bench_scenario)
    index = GridIndex(0.05)
    for zone in zones:
        index.insert(zone.zone_id, zone.geometry)
    lookup = ZoneLookupExpression(index)
    indexed_query = (
        Query.from_source(bench_scenario.source(), name="indexed")
        .filter(col("lon").ne(None))
        .filter(udf(lambda r: bool(lookup.evaluate(r)), name="indexed_hit"))
    )

    def in_any_zone(record):
        lon, lat = record.get("lon"), record.get("lat")
        if lon is None or lat is None:
            return False
        point = Point(float(lon), float(lat))
        return any(zone.geometry.contains_point(point) for zone in zones)

    naive_query = Query.from_source(bench_scenario.source(), name="naive").filter(
        udf(in_any_zone, name="in_any_zone")
    )
    indexed_result = engine.execute(indexed_query)
    naive_result = engine.execute(naive_query)
    indexed_keys = {(r["device_id"], r.timestamp) for r in indexed_result}
    naive_keys = {(r["device_id"], r.timestamp) for r in naive_result}
    assert indexed_keys == naive_keys
