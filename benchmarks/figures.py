#!/usr/bin/env python
"""Regenerate the data behind the paper's figures.

* **Figure 2** — "SNCB Data Visualization": the rail network, the zone
  geometries and the simulated train positions, written as GeoJSON layers.
* **Figure 3 (a–h)** — one visualization per query: each query is executed
  and its output becomes a GeoJSON layer (alert points with properties);
  windowed/keyed outputs without coordinates are kept in the layer metadata.

The paper renders these with Deck.gl; any GeoJSON viewer (kepler.gl, QGIS,
geojson.io) renders the files produced here.

Usage::

    python benchmarks/figures.py --figure 2 --output-dir benchmarks/output
    python benchmarks/figures.py --figure 3 --output-dir benchmarks/output
    python benchmarks/figures.py --figure all
"""

from __future__ import annotations

import argparse
import os
from typing import Dict

from repro.queries import QUERY_CATALOG
from repro.sncb.scenario import Scenario, ScenarioConfig
from repro.streaming.engine import StreamExecutionEngine
from repro.viz.layers import query_layer, scenario_overview

#: Figure 3 sub-figure labels from the paper.
FIGURE3_LABELS: Dict[str, str] = {
    "Q1": "3a Alert Filtering",
    "Q2": "3b Noise Monitoring",
    "Q3": "3c Speed Monitoring",
    "Q4": "3d Weather-Based Speed Zones",
    "Q5": "3e Battery Monitoring",
    "Q6": "3f Heavy Load Monitoring",
    "Q7": "3g Unscheduled Stops",
    "Q8": "3h Brake Monitoring",
}


def figure2(scenario: Scenario, output_dir: str) -> None:
    """Write the Figure-2 layers (network, zones, train positions)."""
    layers = scenario_overview(scenario)
    for name, layer in layers.items():
        path = os.path.join(output_dir, f"figure2_{name}.geojson")
        layer.save(path)
        print(f"  figure 2: wrote {path} ({len(layer)} features)")


def figure3(scenario: Scenario, output_dir: str) -> None:
    """Execute every query and write one Figure-3 layer per query."""
    engine = StreamExecutionEngine()
    for query_id, info in QUERY_CATALOG.items():
        result = engine.execute(info.build(scenario))
        layer = query_layer(query_id, result.records, title=FIGURE3_LABELS[query_id])
        path = os.path.join(output_dir, f"figure3_{query_id.lower()}.geojson")
        layer.save(path)
        print(
            f"  figure {FIGURE3_LABELS[query_id]:35} -> {path} "
            f"({len(layer)} alert points, {len(result)} query outputs)"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=["2", "3", "all"], default="all")
    parser.add_argument("--output-dir", default="benchmarks/output")
    parser.add_argument("--duration", type=float, default=3600.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    os.makedirs(args.output_dir, exist_ok=True)
    scenario = Scenario(ScenarioConfig(num_trains=6, duration_s=args.duration, interval_s=5.0, seed=args.seed))
    print(f"Scenario: {scenario}")
    if args.figure in ("2", "all"):
        figure2(scenario, args.output_dir)
    if args.figure in ("3", "all"):
        figure3(scenario, args.output_dir)


if __name__ == "__main__":
    main()
