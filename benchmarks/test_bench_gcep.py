"""Experiments T2–T5 — GCEP queries (paper §3.2).

Paper figures: Q5 battery monitoring 0.61 MB at 8K e/s, Q6 heavy passenger
load 3.68 MB at 32K e/s, Q7 unscheduled stops 0.40 MB at 10K e/s, Q8 brake
monitoring 2.24 MB at 20K e/s.
"""

import pytest

from benchmarks.conftest import run_query_and_annotate
from repro.queries import QUERY_CATALOG


def test_q5_battery(benchmark, engine, bench_scenario):
    info = QUERY_CATALOG["Q5"]
    result = run_query_and_annotate(benchmark, engine, info.build(bench_scenario), info)
    assert result.metrics.events_in >= bench_scenario.num_events
    # The degraded train must be caught.
    assert any(r["device_id"] == "train-2" for r in result)


def test_q6_heavy_load(benchmark, engine, bench_scenario):
    info = QUERY_CATALOG["Q6"]
    result = run_query_and_annotate(benchmark, engine, info.build(bench_scenario), info)
    assert result.metrics.events_in >= bench_scenario.num_events
    assert all(r["avg_occupancy"] >= 0.85 for r in result)


def test_q7_unscheduled_stops(benchmark, engine, bench_scenario):
    info = QUERY_CATALOG["Q7"]
    result = run_query_and_annotate(benchmark, engine, info.build(bench_scenario), info)
    assert result.metrics.events_in >= bench_scenario.num_events
    assert len(result) > 0


def test_q8_brakes(benchmark, engine, bench_scenario):
    info = QUERY_CATALOG["Q8"]
    result = run_query_and_annotate(benchmark, engine, info.build(bench_scenario), info)
    assert result.metrics.events_in >= bench_scenario.num_events
    # The faulty-brake train must show up among the detected anomalies.
    assert any(r["device_id"] == "train-4" for r in result)
