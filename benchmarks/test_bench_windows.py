"""Experiment A2 (ablation) — window kinds over spatiotemporal streams.

The paper extends NebulaStream's tumbling, sliding and threshold windows to
spatiotemporal data.  This benchmark measures the cost of each window kind on
the same keyed aggregation (noise per train), plus the spatial-grid keyed
variant, so the overhead of sliding windows (events assigned to several
windows) and threshold windows (data-driven state) is visible.
"""

import pytest

from repro.nebulameos.stwindows import SpatialGridAssigner
from repro.streaming.aggregations import Avg, Count, Max
from repro.streaming.expressions import col
from repro.streaming.query import Query
from repro.streaming.windows import SlidingWindow, ThresholdWindow, TumblingWindow


def _window_query(scenario, assigner, key_by):
    return (
        Query.from_source(scenario.source(), name="noise-window")
        .window(assigner, [Count(), Avg("noise_db", output="avg_noise"), Max("noise_db", output="peak")], key_by=key_by)
    )


@pytest.mark.parametrize(
    "label, assigner",
    [
        ("tumbling_300s", TumblingWindow(300.0)),
        ("sliding_300s_60s", SlidingWindow(300.0, 60.0)),
        ("threshold_noisy", ThresholdWindow(col("noise_db") > 80.0, min_count=2)),
    ],
)
def test_window_kind_cost(benchmark, engine, bench_scenario, label, assigner):
    query = _window_query(bench_scenario, assigner, ["device_id"])
    holder = {}

    def run():
        holder["result"] = engine.execute(query)
        return holder["result"]

    benchmark(run)
    result = holder["result"]
    benchmark.extra_info["window"] = label
    benchmark.extra_info["windows_emitted"] = len(result)
    benchmark.extra_info["ingestion_rate_eps"] = round(result.metrics.ingestion_rate_eps, 1)
    assert len(result) > 0


def test_spatial_grid_keyed_window(benchmark, engine, bench_scenario):
    """Aggregation keyed by (train, spatial cell): the spatiotemporal tumbling window."""
    grid = SpatialGridAssigner(0.05)
    query = (
        Query.from_source(bench_scenario.source(), name="noise-per-cell")
        .filter(col("lon").ne(None))
        .map(cell=grid.expression())
        .window(TumblingWindow(300.0), [Count(), Avg("noise_db", output="avg_noise")], key_by=["device_id", "cell"])
    )
    holder = {}

    def run():
        holder["result"] = engine.execute(query)
        return holder["result"]

    benchmark(run)
    result = holder["result"]
    benchmark.extra_info["windows_emitted"] = len(result)
    # Keying by cell produces strictly more windows than keying by device alone.
    assert len(result) > 0
