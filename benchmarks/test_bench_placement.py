"""Experiment A1 (ablation) — edge vs. cloud operator placement.

The paper's motivation for NebulaMEOS is that spatiotemporal filtering on the
train's edge device avoids shipping raw data over the weak uplink.  This
benchmark runs the same geofencing query under both placements on the
simulated topology and records transferred bytes and end-to-end latency.
"""

import pytest

from repro.queries import QUERY_CATALOG
from repro.streaming.topology import PlacementStrategy, Topology, TopologyExecution


@pytest.fixture(scope="module")
def topology_execution():
    return TopologyExecution(Topology.train_deployment(num_trains=6))


@pytest.mark.parametrize("strategy", [PlacementStrategy.EDGE_FIRST, PlacementStrategy.CLOUD_ONLY])
def test_q1_placement(benchmark, bench_scenario, topology_execution, strategy):
    query = QUERY_CATALOG["Q1"].build(bench_scenario)

    report_holder = {}

    def run():
        report_holder["report"] = topology_execution.run(query, "train-0", strategy)
        return report_holder["report"]

    benchmark(run)
    report = report_holder["report"]
    benchmark.extra_info.update(report.as_dict())
    assert report.events_in >= bench_scenario.num_events


def test_edge_placement_transfers_less(bench_scenario, topology_execution):
    """The headline claim: edge placement ships far less data for selective queries."""
    query = QUERY_CATALOG["Q1"].build(bench_scenario)
    reports = topology_execution.compare(query, "train-0")
    edge = reports[PlacementStrategy.EDGE_FIRST.value]
    cloud = reports[PlacementStrategy.CLOUD_ONLY.value]
    assert edge.bytes_transferred < cloud.bytes_transferred / 10
    assert edge.total_latency_s < cloud.total_latency_s
